#include <algorithm>
// Cross-module integration tests: the full lifecycle of a faulty processor from screening
// through mitigation, and end-to-end consistency between the analytic fleet model and the
// operation-level simulation.

#include <set>

#include <gtest/gtest.h>

#include "src/analysis/bitflip.h"
#include "src/analysis/patterns.h"
#include "src/analysis/repro.h"
#include "src/farron/baseline.h"
#include "src/farron/farron.h"
#include "src/farron/protection.h"
#include "src/fleet/pipeline.h"

namespace sdc {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { suite_ = new TestSuite(TestSuite::BuildFull()); }
  static void TearDownTestSuite() {
    delete suite_;
    suite_ = nullptr;
  }
  static TestSuite* suite_;
};

TestSuite* IntegrationTest::suite_ = nullptr;

TEST_F(IntegrationTest, FaultyProcessorLifecycle) {
  // Pre-production testing on an FPU1-class part: detected, defective core masked,
  // remaining cores serve a protected workload with zero SDC events.
  FaultyMachine machine(FindInCatalog("FPU1"), 101);
  FarronConfig config;
  Farron farron(suite_, &machine, config);
  const FarronRoundSummary pre_production = farron.RunPreProduction();
  EXPECT_TRUE(pre_production.report.any_error());
  EXPECT_FALSE(pre_production.processor_deprecated);
  const int defective = FindInCatalog("FPU1").defects.front().affected_pcores.front();
  EXPECT_TRUE(farron.pool().IsMasked(defective));

  // The workload (arctan-heavy, the defect's home turf) runs on the remaining cores.
  const int kernel = suite_->IndexOf("lib.math.fp_arctan.f64.n256");
  ASSERT_GE(kernel, 0);
  WorkloadSpec spec;
  spec.kernel_case_index = static_cast<size_t>(kernel);
  spec.base_utilization = 0.5;
  spec.burst_probability = 0.0;
  const ProtectionReport report =
      SimulateProtectedWorkload(farron, machine, *suite_, spec, 1.0, true);
  EXPECT_EQ(report.sdc_events, 0u);
}

TEST_F(IntegrationTest, UnmaskedFaultyCoreCorruptsWorkload) {
  // The same workload on the defective core without mitigation sees corruptions -- FPU1's
  // defect is apparent (trigger below idle temperatures).
  FaultyMachine machine(FindInCatalog("FPU1"), 103);
  FarronConfig config;
  Farron farron(suite_, &machine, config);  // no pre-production: core not masked
  const int kernel = suite_->IndexOf("lib.math.fp_arctan.f64.n256");
  WorkloadSpec spec;
  spec.kernel_case_index = static_cast<size_t>(kernel);
  spec.base_utilization = 0.6;
  const ProtectionReport report =
      SimulateProtectedWorkload(farron, machine, *suite_, spec, 1.0, true);
  // The defective core is pcore 1 of 8 and the workload uses the first usable core (0), so
  // corruption requires the defect to live there; re-run against the full-core defect
  // instead for a deterministic signal.
  FaultyMachine mix2(FindInCatalog("MIX2"), 103);
  Farron unguarded(suite_, &mix2, config);
  WorkloadSpec mix_spec;
  mix_spec.kernel_case_index =
      static_cast<size_t>(suite_->IndexOf("app.matmul.f64.n16.l8"));
  mix_spec.base_utilization = 0.6;
  const ProtectionReport mix_report =
      SimulateProtectedWorkload(unguarded, mix2, *suite_, mix_spec, 1.0, true);
  EXPECT_GT(mix_report.sdc_events + report.sdc_events, 0u);
}

TEST_F(IntegrationTest, BaselineDeprecatesWholePartFarronKeepsCores) {
  // Observation 4 / Section 7.1: fine-grained decommission preserves capacity.
  FaultyMachine for_baseline(FindInCatalog("SIMD1"), 105);
  BaselinePolicy baseline(suite_, BaselineConfig());
  const RunReport baseline_report = baseline.RunRegularRound(for_baseline);
  EXPECT_TRUE(baseline_report.any_error());  // baseline would now discard all 16 cores

  FaultyMachine for_farron(FindInCatalog("SIMD1"), 105);
  FarronConfig config;
  Farron farron(suite_, &for_farron, config);
  std::vector<std::string> history;
  for (size_t index : suite_->IndicesTargeting(Feature::kVecUnit)) {
    history.push_back(suite_->info(index).id);
  }
  farron.SetActiveFromHistory(history);
  const FarronRoundSummary summary = farron.RunRegularRound({Feature::kVecUnit});
  EXPECT_TRUE(summary.report.any_error());
  EXPECT_EQ(farron.pool().UsableCores().size(), 15u);  // 15 of 16 cores keep serving
}

TEST_F(IntegrationTest, SdcRecordsFeedAnalysisPipeline) {
  // Records collected by the toolchain flow through every analysis: bitflips, precision
  // losses, patterns, and suspect ranking, reproducing the paper's qualitative findings.
  FaultyMachine machine(FindInCatalog("FPU1"), 107);
  TestFramework framework(suite_);
  TestRunConfig config;
  config.time_scale = 1e5;
  config.seed = 9;
  config.pcores_under_test = {FindInCatalog("FPU1").defects.front().affected_pcores.front()};
  std::vector<TestPlanEntry> plan;
  for (size_t index : suite_->IndicesTargeting(Feature::kFpu)) {
    plan.push_back({index, 5.0});
  }
  const RunReport report = framework.RunPlan(machine, plan, config);
  ASSERT_GT(report.records.size(), 20u);

  // Observation 7: flips live in the fraction part, so f64 precision losses are tiny.
  const BitflipStats stats = AnalyzeBitflips(report.records, DataType::kFloat64);
  EXPECT_GT(stats.FractionPartShare(), 0.9);
  const std::vector<double> losses = PrecisionLosses(report.records, DataType::kFloat64);
  ASSERT_FALSE(losses.empty());
  EXPECT_LT(Quantile(losses, 0.99), 2e-4);  // paper: 99.9% below 0.02% (99% here: the
                                            // extreme tail is sampling-noise sensitive)

  // Observation 8: strong fixed patterns on FPU1 (pattern probability 0.9).
  uint64_t patterned_settings = 0;
  uint64_t settings = 0;
  for (const TestcaseResult& result : report.results) {
    if (!result.failed()) {
      continue;
    }
    const PatternAnalysis analysis =
        MinePatterns(FilterSetting(report.records, result.testcase_id), 0.05);
    if (analysis.record_count >= 20) {
      ++settings;
      patterned_settings += analysis.patterned_record_fraction > 0.5 ? 1 : 0;
    }
  }
  ASSERT_GT(settings, 0u);
  EXPECT_GT(patterned_settings, 0u);

  // Section 4.1: the statistical instruction study points at arctan.
  const std::vector<SuspectScore> suspects = RankSuspectOps(report);
  ASSERT_FALSE(suspects.empty());
  std::set<OpKind> top;
  for (size_t i = 0; i < std::min<size_t>(2, suspects.size()); ++i) {
    top.insert(suspects[i].op);
  }
  EXPECT_TRUE(top.count(OpKind::kFpArctan) == 1);
}

TEST_F(IntegrationTest, AnalyticFleetModelAgreesWithOpLevelSimulation) {
  // The screening pipeline predicts detection via closed-form expected errors; verify the
  // prediction against an actual toolchain run for an apparent catalog defect.
  ScreeningPipeline pipeline(suite_);
  const FaultyProcessorInfo fpu1 = FindInCatalog("FPU1");
  const StageParams stage{60.0, 58.0, 1.0};
  const double expected =
      pipeline.ExpectedErrors(fpu1.defects.front(), stage, fpu1.spec.physical_cores);
  EXPECT_GT(expected, 1.0);  // the model says: detected

  FaultyMachine machine(fpu1, 109);
  TestFramework framework(suite_);
  TestRunConfig config;
  config.time_scale = 1e6;
  config.seed = 10;
  const RunReport report = framework.RunPlan(machine, framework.EqualPlan(60.0), config);
  EXPECT_TRUE(report.any_error());  // and the simulation agrees
}

TEST_F(IntegrationTest, DeterministicEndToEnd) {
  auto run_once = [this]() {
    FaultyMachine machine(FindInCatalog("SIMD1"), 111);
    TestFramework framework(suite_);
    TestRunConfig config;
    config.time_scale = 1e6;
    config.seed = 11;
    config.pcores_under_test = {5};
    std::vector<TestPlanEntry> plan;
    for (size_t index : suite_->IndicesTargeting(Feature::kVecUnit)) {
      plan.push_back({index, 10.0});
    }
    return framework.RunPlan(machine, plan, config);
  };
  const RunReport first = run_once();
  const RunReport second = run_once();
  EXPECT_EQ(first.total_errors(), second.total_errors());
  ASSERT_EQ(first.records.size(), second.records.size());
  for (size_t i = 0; i < first.records.size(); ++i) {
    EXPECT_EQ(first.records[i].expected, second.records[i].expected);
    EXPECT_EQ(first.records[i].actual, second.records[i].actual);
  }
}

}  // namespace
}  // namespace sdc
