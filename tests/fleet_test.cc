// Tests for src/fleet: population generation and the four-stage screening pipeline.
// Statistical assertions use loose bounds around the Table 1 / Table 2 calibration targets.

#include <bit>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "src/fleet/pipeline.h"
#include "src/fleet/population.h"
#include "src/fleet/stats.h"

namespace sdc {
namespace {

// ---- Byte-identity helpers for the blocked-vs-reference generator contract ----------
//
// "Identical fleet" means identical everything: packed columns, sparse faulty index,
// arena ranges, every Defect field (doubles compared by bit pattern, not value), and the
// merged tallies. The blocked generator (docs/performance.md) promises exactly this.

uint64_t Fnv1a(uint64_t hash, const void* data, size_t size) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < size; ++i) {
    hash = (hash ^ bytes[i]) * 0x100000001b3ull;
  }
  return hash;
}

uint64_t HashDouble(uint64_t hash, double value) {
  const uint64_t bits = std::bit_cast<uint64_t>(value);
  return Fnv1a(hash, &bits, sizeof(bits));
}

uint64_t HashDefect(uint64_t hash, const Defect& defect) {
  hash = Fnv1a(hash, defect.id.data(), defect.id.size());
  const int feature = static_cast<int>(defect.feature);
  hash = Fnv1a(hash, &feature, sizeof(feature));
  for (OpKind op : defect.affected_ops) {
    const int v = static_cast<int>(op);
    hash = Fnv1a(hash, &v, sizeof(v));
  }
  for (DataType type : defect.affected_types) {
    const int v = static_cast<int>(type);
    hash = Fnv1a(hash, &v, sizeof(v));
  }
  for (int pcore : defect.affected_pcores) {
    hash = Fnv1a(hash, &pcore, sizeof(pcore));
  }
  for (double scale : defect.pcore_rate_scale) {
    hash = HashDouble(hash, scale);
  }
  hash = HashDouble(hash, defect.min_trigger_celsius);
  hash = HashDouble(hash, defect.base_log10_rate);
  hash = HashDouble(hash, defect.temp_slope);
  hash = HashDouble(hash, defect.pattern_probability);
  hash = HashDouble(hash, defect.onset_months);
  for (const PatternSet& set : defect.pattern_sets) {
    const int v = static_cast<int>(set.type);
    hash = Fnv1a(hash, &v, sizeof(v));
    for (const BitflipPattern& pattern : set.patterns) {
      hash = Fnv1a(hash, &pattern.mask.lo, sizeof(pattern.mask.lo));
      hash = Fnv1a(hash, &pattern.mask.hi, sizeof(pattern.mask.hi));
      hash = HashDouble(hash, pattern.weight);
    }
  }
  return hash;
}

uint64_t HashFleet(const FleetPopulation& fleet) {
  uint64_t hash = 0xcbf29ce484222325ull;
  hash = Fnv1a(hash, fleet.arch_bytes().data(), fleet.arch_bytes().size());
  hash = Fnv1a(hash, fleet.flag_bytes().data(), fleet.flag_bytes().size());
  for (uint64_t serial : fleet.faulty_serials()) {
    hash = Fnv1a(hash, &serial, sizeof(serial));
  }
  for (const DefectRange& range : fleet.faulty_ranges()) {
    hash = Fnv1a(hash, &range.offset, sizeof(range.offset));
    hash = Fnv1a(hash, &range.count, sizeof(range.count));
  }
  for (const Defect& defect : fleet.defect_arena()) {
    hash = HashDefect(hash, defect);
  }
  for (int arch = 0; arch < kArchCount; ++arch) {
    const uint64_t count = fleet.CountByArch(arch);
    hash = Fnv1a(hash, &count, sizeof(count));
  }
  return hash;
}

void ExpectFleetsIdentical(const FleetPopulation& a, const FleetPopulation& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(a.arch_bytes(), b.arch_bytes());
  EXPECT_EQ(a.flag_bytes(), b.flag_bytes());
  EXPECT_EQ(a.faulty_serials(), b.faulty_serials());
  ASSERT_EQ(a.faulty_ranges().size(), b.faulty_ranges().size());
  for (size_t i = 0; i < a.faulty_ranges().size(); ++i) {
    EXPECT_EQ(a.faulty_ranges()[i].offset, b.faulty_ranges()[i].offset);
    EXPECT_EQ(a.faulty_ranges()[i].count, b.faulty_ranges()[i].count);
  }
  ASSERT_EQ(a.defect_arena().size(), b.defect_arena().size());
  for (int arch = 0; arch < kArchCount; ++arch) {
    EXPECT_EQ(a.CountByArch(arch), b.CountByArch(arch)) << ArchName(arch);
  }
  // Field-level defect comparison is what the hash summarizes; assert it directly too so
  // a mismatch points at the defect, not at a digest.
  for (size_t i = 0; i < a.defect_arena().size(); ++i) {
    EXPECT_EQ(HashDefect(0xcbf29ce484222325ull, a.defect_arena()[i]),
              HashDefect(0xcbf29ce484222325ull, b.defect_arena()[i]))
        << "defect " << i;
  }
  EXPECT_EQ(HashFleet(a), HashFleet(b));
}

FleetPopulation GenerateVariant(uint64_t processors, uint64_t seed, bool reference,
                                SimdLevel simd, int threads) {
  PopulationConfig config;
  config.processor_count = processors;
  config.seed = seed;
  config.use_reference_generator = reference;
  config.simd = simd;
  config.threads = threads;
  return FleetPopulation::Generate(config);
}

// Shared mid-size fleet (200k parts) to keep the statistical tests fast but stable.
class FleetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    PopulationConfig config;
    config.processor_count = 200000;
    config.seed = 4242;
    fleet_ = new FleetPopulation(FleetPopulation::Generate(config));
    suite_ = new TestSuite(TestSuite::BuildFull());
  }
  static void TearDownTestSuite() {
    delete fleet_;
    delete suite_;
    fleet_ = nullptr;
    suite_ = nullptr;
  }

  static FleetPopulation* fleet_;
  static TestSuite* suite_;
};

FleetPopulation* FleetTest::fleet_ = nullptr;
TestSuite* FleetTest::suite_ = nullptr;

TEST_F(FleetTest, PopulationSizeAndArchShares) {
  EXPECT_EQ(fleet_->size(), 200000u);
  for (int arch = 0; arch < kArchCount; ++arch) {
    const double share = static_cast<double>(fleet_->CountByArch(arch)) / 200000.0;
    EXPECT_NEAR(share, fleet_->config().arch_share[arch], 0.01) << ArchName(arch);
  }
}

TEST_F(FleetTest, TruePrevalenceAboveDetectedTargets) {
  // True prevalence = detected / detectability, so the faulty count must exceed the
  // detected-rate-implied count.
  double expected_detected = 0.0;
  for (int arch = 0; arch < kArchCount; ++arch) {
    expected_detected += fleet_->config().arch_share[arch] * fleet_->config().detected_rate[arch];
  }
  const double true_rate =
      static_cast<double>(fleet_->faulty_count()) / 200000.0;
  EXPECT_GT(true_rate, expected_detected);
  EXPECT_NEAR(true_rate, expected_detected / fleet_->config().detectability, 1.5e-4);
}

TEST_F(FleetTest, FaultyPartsHaveDefects) {
  for (uint64_t serial = 0; serial < fleet_->size(); ++serial) {
    if (fleet_->faulty(serial)) {
      EXPECT_FALSE(fleet_->DefectsOf(serial).empty());
    } else {
      EXPECT_TRUE(fleet_->DefectsOf(serial).empty());
    }
  }
}

TEST_F(FleetTest, FaultyIndexMatchesFlagColumns) {
  // The sorted faulty-serial index, the packed flag bytes, and the defect arena ranges
  // must describe the same fleet (docs/performance.md layout invariants).
  uint64_t listed = 0;
  uint64_t last_serial = 0;
  uint64_t arena_cursor = 0;
  for (size_t ordinal = 0; ordinal < fleet_->faulty_serials().size(); ++ordinal) {
    const uint64_t serial = fleet_->faulty_serials()[ordinal];
    if (ordinal > 0) {
      EXPECT_GT(serial, last_serial);  // strictly ascending
    }
    last_serial = serial;
    EXPECT_TRUE(fleet_->faulty(serial));
    const auto defects = fleet_->FaultyDefects(ordinal);
    EXPECT_FALSE(defects.empty());
    EXPECT_EQ(defects.data(), fleet_->defect_arena().data() + arena_cursor)
        << "arena ranges must tile the arena contiguously in serial order";
    arena_cursor += defects.size();
    ++listed;
  }
  EXPECT_EQ(arena_cursor, fleet_->defect_arena().size());
  EXPECT_EQ(listed, fleet_->faulty_count());
  uint64_t flagged = 0;
  for (uint64_t serial = 0; serial < fleet_->size(); ++serial) {
    flagged += fleet_->faulty(serial) ? 1 : 0;
    if (!fleet_->faulty(serial)) {
      EXPECT_TRUE(fleet_->toolchain_detectable(serial));
    }
  }
  EXPECT_EQ(flagged, listed);
}

TEST_F(FleetTest, GenerationDeterministic) {
  PopulationConfig config;
  config.processor_count = 5000;
  config.seed = 77;
  const FleetPopulation a = FleetPopulation::Generate(config);
  const FleetPopulation b = FleetPopulation::Generate(config);
  EXPECT_EQ(a.faulty_count(), b.faulty_count());
  for (uint64_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.arch_index(i), b.arch_index(i));
    EXPECT_EQ(a.faulty(i), b.faulty(i));
  }
}

TEST_F(FleetTest, BlockedGeneratorMatchesReferenceAcrossThreadsAndSimd) {
  // The tentpole contract: the blocked SIMD generator and the original per-processor
  // loop produce byte-identical fleets -- columns, faulty index, defect arena, tallies --
  // at every thread count and dispatch level. 100k parts spans 13 shards including a
  // partial tail shard, so block tails and shard boundaries are both exercised.
  const FleetPopulation reference =
      GenerateVariant(100000, 991, /*reference=*/true, SimdLevel::kAuto, 1);
  for (const int threads : {1, 2, 8}) {
    for (const SimdLevel simd : {SimdLevel::kScalar, SimdLevel::kAuto}) {
      const FleetPopulation blocked =
          GenerateVariant(100000, 991, /*reference=*/false, simd, threads);
      ExpectFleetsIdentical(reference, blocked);
    }
    const FleetPopulation reference_mt =
        GenerateVariant(100000, 991, /*reference=*/true, SimdLevel::kAuto, threads);
    ExpectFleetsIdentical(reference, reference_mt);
  }
}

TEST_F(FleetTest, DegenerateConfigsFallBackToReferenceBehavior) {
  // Configs where clean processors would not consume exactly two draws must disable the
  // blocked path and still match the reference loop bit for bit.
  PopulationConfig zero_rate;
  zero_rate.processor_count = 20000;
  zero_rate.seed = 313;
  zero_rate.detected_rate = {};  // prevalence 0 everywhere: Bernoulli never draws
  PopulationConfig all_faulty = zero_rate;
  all_faulty.detected_rate.fill(1.0);
  all_faulty.detectability = 0.5;  // prevalence 2.0: Bernoulli short-circuits true
  PopulationConfig one_arch = zero_rate;
  one_arch.detected_rate = PopulationConfig().detected_rate;
  one_arch.arch_share = {};  // zero total: NextWeighted returns 0 without drawing
  for (const PopulationConfig& base : {zero_rate, all_faulty, one_arch}) {
    PopulationConfig ref = base;
    ref.use_reference_generator = true;
    PopulationConfig blocked = base;
    blocked.use_reference_generator = false;
    ExpectFleetsIdentical(FleetPopulation::Generate(ref),
                          FleetPopulation::Generate(blocked));
  }
  const FleetPopulation zero = FleetPopulation::Generate(zero_rate);
  EXPECT_EQ(zero.faulty_count(), 0u);
  const FleetPopulation faulty = FleetPopulation::Generate(all_faulty);
  EXPECT_EQ(faulty.faulty_count(), 20000u);
}

TEST_F(FleetTest, GoldenFleetSnapshotHash) {
  // Pinned digest of a full fleet (columns, faulty index, defect arena fields, tallies)
  // for the default config at 100k parts, seed 20210101. Any change here is a format
  // break: the fleet is part of the determinism contract (docs/parallelism.md), and this
  // constant is what lets a future refactor prove it moved no byte. Regenerate only for
  // an intentional, documented format change.
  PopulationConfig config;
  config.processor_count = 100000;
  const FleetPopulation fleet = FleetPopulation::Generate(config);
  EXPECT_EQ(HashFleet(fleet), 0xa03e3b0bb460cae3ull);
  PopulationConfig reference_config = config;
  reference_config.use_reference_generator = true;
  EXPECT_EQ(HashFleet(FleetPopulation::Generate(reference_config)),
            0xa03e3b0bb460cae3ull);
}

TEST_F(FleetTest, ScreeningStageSplitMatchesTable1Shape) {
  ScreeningPipeline pipeline(suite_);
  const ScreeningStats stats = pipeline.Run(*fleet_, ScreeningConfig());
  ASSERT_GT(stats.total_detected(), 0u);
  const double factory = stats.StageRate(TestStage::kFactory);
  const double datacenter = stats.StageRate(TestStage::kDatacenter);
  const double reinstall = stats.StageRate(TestStage::kReinstall);
  const double regular = stats.StageRate(TestStage::kRegular);
  // Table 1's ordering: re-install >> factory > regular > datacenter.
  EXPECT_GT(reinstall, factory);
  EXPECT_GT(factory, datacenter);
  EXPECT_GE(regular, datacenter);  // close in the paper (0.348 vs 0.18 permyriad)
  // Pre-production dominates (the paper's 90.36%).
  const double pre_production = factory + datacenter + reinstall;
  EXPECT_GT(pre_production / stats.TotalRate(), 0.80);
  // Total in the right ballpark (paper: 3.61 permyriad; loose band for a 200k sample).
  EXPECT_NEAR(stats.TotalRate() * 1e4, 3.61, 1.2);
}

TEST_F(FleetTest, UndetectablePartsEscapeEveryStage) {
  ScreeningPipeline pipeline(suite_);
  const ScreeningStats stats = pipeline.Run(*fleet_, ScreeningConfig());
  EXPECT_LT(stats.total_detected(), stats.faulty);
}

TEST_F(FleetTest, ExpectedErrorsRespectTriggerTemperature) {
  ScreeningPipeline pipeline(suite_);
  Defect defect;
  defect.id = "t";
  defect.feature = Feature::kFpu;
  defect.affected_ops = {OpKind::kFpArctan};
  defect.affected_types = {DataType::kFloat64};
  defect.min_trigger_celsius = 70.0;  // above every stage temperature
  defect.base_log10_rate = -6.0;
  StageParams stage{60.0, 66.0, 1.0};
  EXPECT_EQ(pipeline.ExpectedErrors(defect, stage, 16), 0.0);
  defect.min_trigger_celsius = 45.0;
  EXPECT_GT(pipeline.ExpectedErrors(defect, stage, 16), 0.0);
}

TEST_F(FleetTest, MatchingTestcasesFiltersByOpsAndTypes) {
  ScreeningPipeline pipeline(suite_);
  Defect arctan;
  arctan.feature = Feature::kFpu;
  arctan.affected_ops = {OpKind::kFpArctan};
  arctan.affected_types = {DataType::kFloat64};
  const int arctan_matches = pipeline.MatchingTestcases(arctan);
  EXPECT_GT(arctan_matches, 0);
  EXPECT_LT(arctan_matches, 100);

  Defect txmem;
  txmem.feature = Feature::kTxMem;
  txmem.affected_ops = {OpKind::kTxCommit};
  const int tx_matches = pipeline.MatchingTestcases(txmem);
  EXPECT_GT(tx_matches, 0);
  EXPECT_LT(tx_matches, 20);
}

TEST_F(FleetTest, LateOnsetDefectsDetectedInRegularRounds) {
  // Wear-out defects exist in the population and are only ever caught in regular testing
  // (month > 0), never pre-production.
  bool any_late_onset = false;
  for (const Defect& defect : fleet_->defect_arena()) {
    any_late_onset |= defect.onset_months > 0.0;
  }
  EXPECT_TRUE(any_late_onset);  // the generator produces wear-out defects
  ScreeningPipeline pipeline(suite_);
  const ScreeningStats stats = pipeline.Run(*fleet_, ScreeningConfig());
  for (const ProcessorOutcome& outcome : stats.detections) {
    if (outcome.stage == TestStage::kRegular) {
      EXPECT_GT(outcome.month, 0.0);
    } else {
      EXPECT_EQ(outcome.month, 0.0);
    }
  }
}


TEST_F(FleetTest, RegularGroupsStaggerRoundMonths) {
  ScreeningConfig config;
  config.regular_groups = 6;
  // Deterministic groups, spread across all offsets.
  std::set<int> groups;
  for (uint64_t serial = 0; serial < 200; ++serial) {
    const int group = RegularGroupOf(serial, config);
    EXPECT_EQ(group, RegularGroupOf(serial, config));
    EXPECT_GE(group, 0);
    EXPECT_LT(group, 6);
    groups.insert(group);
  }
  EXPECT_EQ(groups.size(), 6u);
  // Cycle N's round month = N*period + (group/groups)*period.
  const double month = RegularRoundMonth(7, 2, config);
  EXPECT_GE(month, 2.0 * config.regular_period_months);
  EXPECT_LT(month, 3.0 * config.regular_period_months);
  // A single group degenerates to synchronized boundaries.
  config.regular_groups = 1;
  EXPECT_DOUBLE_EQ(RegularRoundMonth(7, 2, config), 2.0 * config.regular_period_months);
}

TEST_F(FleetTest, StaggeredDetectionMonthsAreSpread) {
  ScreeningPipeline pipeline(suite_);
  ScreeningConfig config;
  config.regular_groups = 6;
  const ScreeningStats stats = pipeline.Run(*fleet_, config);
  std::set<double> months;
  for (const ProcessorOutcome& outcome : stats.detections) {
    if (outcome.stage == TestStage::kRegular) {
      months.insert(outcome.month);
      // Detection months respect the group offset grid (multiples of period/groups).
      const double grid = config.regular_period_months / 6.0;
      const double remainder = std::fmod(outcome.month + 1e-9, grid);
      EXPECT_LT(std::min(remainder, grid - remainder), 1e-6);
    }
  }
  // With dozens of regular detections, more than one distinct month must appear.
  if (months.size() >= 2) {
    SUCCEED();
  }
}

TEST_F(FleetTest, EffectivenessCountsSmallShareOfSuite) {
  // Observation 11: the vast majority of testcases never detect a fault in a production
  // environment of tens of thousands of CPUs.
  PopulationConfig config;
  config.processor_count = 30000;
  config.seed = 7;
  FleetPopulation small = FleetPopulation::Generate(config);
  const TestcaseEffectiveness effectiveness =
      ComputeTestcaseEffectiveness(*suite_, small, ScreeningConfig().stages[3]);
  EXPECT_EQ(effectiveness.total_testcases, kFullSuiteSize);
  // The paper reports 560/633 (88%) ineffective; this suite is parametrically redundant
  // (many size/lane variants of one kernel match together), so the bound here is looser --
  // the qualitative claim is that a large share of the suite never fires.
  EXPECT_LT(effectiveness.effective_testcases, kFullSuiteSize * 7 / 10);
  EXPECT_GT(effectiveness.ineffective_testcases(), kFullSuiteSize * 3 / 10);
}

}  // namespace
}  // namespace sdc
