// Tests for src/tolerance: redundant execution, range prediction, and the technique
// evaluators behind the Observation 12 harness.

#include <cmath>

#include <gtest/gtest.h>

#include "src/fault/catalog.h"
#include "src/tolerance/evaluation.h"
#include "src/tolerance/range_detector.h"
#include "src/tolerance/redundancy.h"
#include "src/tolerance/selective.h"

namespace sdc {
namespace {

// A defect on pcore 0 that corrupts every matching op (saturated at time_scale >= 1e8).
FaultyProcessorInfo HotThreat(double base_log10_rate = -2.0) {
  FaultyProcessorInfo info;
  info.cpu_id = "threat";
  info.arch = "M2";
  info.age_years = 1.0;
  info.spec = MakeArchSpec("M2");
  Defect defect;
  defect.id = "threat";
  defect.feature = Feature::kFpu;
  defect.affected_ops = {OpKind::kFpArctan, OpKind::kIntMul};
  defect.affected_types = {DataType::kFloat64, DataType::kInt32};
  defect.affected_pcores = {0};
  defect.min_trigger_celsius = 0.0;
  defect.base_log10_rate = base_log10_rate;
  defect.temp_slope = 0.0;
  defect.intensity_ref = 0.0;
  defect.pattern_probability = 0.0;
  info.defects.push_back(std::move(defect));
  return info;
}

// --- Redundancy ---

TEST(RedundancyTest, DmrAgreesOnHealthyMachine) {
  FaultyMachine machine(MakeArchSpec("M2"));
  RedundantExecutor executor(&machine.cpu(), {0, 2});
  const DmrOutcome outcome = executor.RunDmr([&](int lcore) {
    return BitsOfDouble(machine.cpu().ExecuteF64(lcore, OpKind::kFpArctan, 0.75));
  });
  EXPECT_FALSE(outcome.mismatch);
  EXPECT_EQ(outcome.first, outcome.second);
}

TEST(RedundancyTest, DmrFlagsDefectiveReplica) {
  FaultyMachine machine(HotThreat(), 5);
  machine.cpu().SetTimeScale(1e8);
  RedundantExecutor executor(&machine.cpu(), {0, 2});  // pcore 0 defective, pcore 1 healthy
  const DmrOutcome outcome = executor.RunDmr([&](int lcore) {
    return BitsOfDouble(machine.cpu().ExecuteF64(lcore, OpKind::kFpArctan, 0.75));
  });
  EXPECT_TRUE(outcome.mismatch);
}

TEST(RedundancyTest, TmrVotesOutTheBadCore) {
  FaultyMachine machine(HotThreat(), 7);
  machine.cpu().SetTimeScale(1e8);
  RedundantExecutor executor(&machine.cpu(), {0, 2, 4});
  const Word128 golden = BitsOfDouble(std::atan(0.75));
  const TmrOutcome outcome = executor.RunTmr([&](int lcore) {
    return BitsOfDouble(machine.cpu().ExecuteF64(lcore, OpKind::kFpArctan, std::atan(0.75)));
  });
  ASSERT_TRUE(outcome.voted.has_value());
  EXPECT_EQ(*outcome.voted, golden);
  EXPECT_TRUE(outcome.disagreement);
  EXPECT_EQ(outcome.dissenting_replica, 0);
}

TEST(RedundancyTest, TmrCleanRunHasNoDissent) {
  FaultyMachine machine(MakeArchSpec("M5"));
  RedundantExecutor executor(&machine.cpu(), {0, 2, 4});
  const TmrOutcome outcome = executor.RunTmr([&](int lcore) {
    return BitsOfInt32(machine.cpu().ExecuteI32(lcore, OpKind::kIntMul, 42));
  });
  ASSERT_TRUE(outcome.voted.has_value());
  EXPECT_FALSE(outcome.disagreement);
  EXPECT_EQ(outcome.dissenting_replica, -1);
}

// --- Range detector ---

TEST(RangeDetectorTest, AcceptsStationaryStream) {
  RangeDetector detector;
  Rng rng(3);
  uint64_t flags = 0;
  for (int i = 0; i < 5000; ++i) {
    flags += detector.ObserveAndCheck(100.0 + rng.NextGaussian(0.0, 0.5)) ? 1 : 0;
  }
  // 4-sigma band: false alarms should be very rare.
  EXPECT_LT(flags, 25u);
}

TEST(RangeDetectorTest, FlagsLargeDeviation) {
  RangeDetector detector;
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    detector.ObserveAndCheck(100.0 + rng.NextGaussian(0.0, 0.5));
  }
  EXPECT_TRUE(detector.ObserveAndCheck(100000.0));
  EXPECT_TRUE(detector.ObserveAndCheck(-5000.0));
  EXPECT_EQ(detector.flagged(), 2u);
}

TEST(RangeDetectorTest, MissesSmallRelativeDeviation) {
  // Observation 7: fraction-part flips change f64 values by < 0.02%; no usable band can
  // catch that.
  RangeDetector detector;
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    detector.ObserveAndCheck(100.0 + rng.NextGaussian(0.0, 0.5));
  }
  EXPECT_FALSE(detector.ObserveAndCheck(100.0 * (1.0 + 2e-4)));
}

TEST(RangeDetectorTest, RejectedValuesDoNotPoisonStatistics) {
  RangeDetector detector;
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    detector.ObserveAndCheck(50.0 + rng.NextGaussian(0.0, 0.1));
  }
  const double mean_before = detector.mean();
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(detector.ObserveAndCheck(1e9));
  }
  EXPECT_NEAR(detector.mean(), mean_before, 1e-9);
}

TEST(RangeDetectorTest, TracksSlowDrift) {
  RangeDetector detector;
  Rng rng(11);
  uint64_t flags = 0;
  for (int i = 0; i < 20000; ++i) {
    const double drifting = 100.0 + 0.01 * i + rng.NextGaussian(0.0, 0.5);
    flags += detector.ObserveAndCheck(drifting) ? 1 : 0;
  }
  EXPECT_LT(flags, 100u);
  EXPECT_NEAR(detector.mean(), 300.0, 20.0);
}

// --- Technique evaluators ---

TEST(EvaluationTest, ChecksumAfterComputeNeverDetects) {
  FaultyMachine machine(HotThreat(-7.0), 13);
  const TechniqueEvaluation evaluation =
      EvaluateChecksumAfterCompute(machine, 0, 3000, 1);
  EXPECT_GT(evaluation.corruptions, 0u);
  EXPECT_EQ(evaluation.detected, 0u);  // parity matches the already-corrupted data
  EXPECT_EQ(evaluation.false_alarms, 0u);
}

TEST(EvaluationTest, SecdedHandlesSinglesEscapesMultis) {
  // Single-bit damage: always corrected.
  Defect single;
  single.multi_flip_probability = 0.0;
  single.extra_flip_probability = 0.0;
  single.pattern_probability = 0.0;
  const TechniqueEvaluation single_eval = EvaluateSecdedAgainstDefect(single, 2000, 3);
  EXPECT_EQ(single_eval.corrected, single_eval.corruptions);
  EXPECT_EQ(single_eval.silent_escapes(), 0u);

  // Heavy multi-bit damage: some flips escape or miscorrect.
  Defect multi;
  multi.multi_flip_probability = 1.0;
  multi.extra_flip_probability = 0.6;
  multi.pattern_probability = 0.0;
  const TechniqueEvaluation multi_eval = EvaluateSecdedAgainstDefect(multi, 4000, 5);
  EXPECT_GT(multi_eval.silent_escapes(), 0u);
  EXPECT_LT(multi_eval.DetectionRate(), 1.0);
}

TEST(EvaluationTest, DmrDetectsAllWithHealthyPartner) {
  FaultyMachine machine(HotThreat(-7.0), 17);
  const TechniqueEvaluation evaluation = EvaluateDmr(machine, 0, 2, 3000, 7);
  EXPECT_GT(evaluation.corruptions, 0u);
  EXPECT_DOUBLE_EQ(evaluation.DetectionRate(), 1.0);
  EXPECT_DOUBLE_EQ(evaluation.cost_factor, 2.0);
}

TEST(EvaluationTest, TmrCorrectsWhatItDetects) {
  FaultyMachine machine(HotThreat(-7.0), 19);
  const TechniqueEvaluation evaluation = EvaluateTmr(machine, 0, 2, 4, 3000, 9);
  EXPECT_GT(evaluation.corruptions, 0u);
  EXPECT_EQ(evaluation.corrected, evaluation.detected);
  EXPECT_DOUBLE_EQ(evaluation.DetectionRate(), 1.0);
}


TEST(SelectiveGuardTest, GuardsOnlyConfiguredOps) {
  FaultyMachine machine(MakeArchSpec("M2"));
  GuardedExecutor guard(&machine.cpu(), {OpKind::kFpArctan}, 0, 2);
  guard.ExecuteF64(OpKind::kFpArctan, 0.5);
  guard.ExecuteI32(OpKind::kIntAdd, 7);
  guard.ExecuteRaw(OpKind::kLogicXor, 0xffull, DataType::kByte);
  EXPECT_EQ(guard.total_executions(), 3u);
  EXPECT_EQ(guard.guarded_executions(), 1u);
  EXPECT_EQ(guard.alarms(), 0u);
  EXPECT_NEAR(guard.OverheadShare(), 1.0 / 3.0, 1e-12);
}

TEST(SelectiveGuardTest, AlarmAndShadowValueOnCorruption) {
  FaultyMachine machine(HotThreat(), 41);  // arctan defect pinned to pcore 0
  machine.cpu().SetTimeScale(1e8);
  GuardedExecutor guard(&machine.cpu(), {OpKind::kFpArctan}, /*primary=*/0, /*shadow=*/2);
  const double golden = std::atan(0.9);
  const double value = guard.ExecuteF64(OpKind::kFpArctan, golden);
  EXPECT_EQ(guard.alarms(), 1u);
  EXPECT_EQ(value, golden);  // the healthy shadow's value replaces the corrupted one
}

TEST(EvaluationTest, SelectiveGuardCatchesVulnerableOpsCheaply) {
  FaultyMachine machine(HotThreat(-7.0), 43);
  const TechniqueEvaluation evaluation = EvaluateSelectiveGuard(machine, 0, 2, 5000, 15);
  EXPECT_GT(evaluation.corruptions, 0u);
  EXPECT_DOUBLE_EQ(evaluation.DetectionRate(), 1.0);
  EXPECT_EQ(evaluation.corrected, evaluation.detected);
  EXPECT_GT(evaluation.cost_factor, 1.1);
  EXPECT_LT(evaluation.cost_factor, 1.35);  // far below DMR's 2.0
}

TEST(EvaluationTest, RangePredictionMissesFloatCatchesInt) {
  FaultyMachine f64_machine(HotThreat(-7.0), 21);
  const TechniqueEvaluation f64_eval =
      EvaluateRangeDetector(f64_machine, 0, DataType::kFloat64, 5000, 11);
  FaultyMachine i32_machine(HotThreat(-7.0), 23);
  const TechniqueEvaluation i32_eval =
      EvaluateRangeDetector(i32_machine, 0, DataType::kInt32, 5000, 13);
  EXPECT_GT(f64_eval.corruptions, 0u);
  EXPECT_GT(i32_eval.corruptions, 0u);
  EXPECT_LT(f64_eval.DetectionRate(), 0.2);  // fraction flips stay inside the band
  EXPECT_GT(i32_eval.DetectionRate(), 0.6);  // integer flips blow through it
}

}  // namespace
}  // namespace sdc
