// Unit tests for src/common: RNG, bit views, statistics, table rendering.

#include <cmath>
#include <limits>
#include <span>
#include <sstream>

#include <gtest/gtest.h>

#include "src/common/bits.h"
#include "src/common/parse.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/table.h"

namespace sdc {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a.Next() == b.Next() ? 1 : 0;
  }
  EXPECT_LT(equal, 4);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double value = rng.NextDouble();
    EXPECT_GE(value, 0.0);
    EXPECT_LT(value, 1.0);
  }
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const int64_t value = rng.NextInRange(-3, 3);
    EXPECT_GE(value, -3);
    EXPECT_LE(value, 3);
    saw_lo |= value == -3;
    saw_hi |= value == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(15);
  int hits = 0;
  constexpr int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) {
    hits += rng.NextBernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.3, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  std::vector<double> samples;
  for (int i = 0; i < 50000; ++i) {
    samples.push_back(rng.NextGaussian());
  }
  EXPECT_NEAR(Mean(samples), 0.0, 0.02);
  EXPECT_NEAR(StdDev(samples), 1.0, 0.02);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(19);
  std::vector<double> samples;
  for (int i = 0; i < 50000; ++i) {
    samples.push_back(rng.NextExponential(2.0));
  }
  EXPECT_NEAR(Mean(samples), 0.5, 0.02);
}

TEST(RngTest, PoissonMean) {
  Rng rng(21);
  double sum = 0.0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    sum += static_cast<double>(rng.NextPoisson(3.5));
  }
  EXPECT_NEAR(sum / kTrials, 3.5, 0.1);
}

TEST(RngTest, WeightedPickFollowsWeights) {
  Rng rng(23);
  std::vector<double> weights = {1.0, 3.0, 0.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) {
    ++counts[rng.NextWeighted(weights)];
  }
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(static_cast<double>(counts[1]) / (counts[0] + counts[1]), 0.75, 0.02);
}

TEST(RngTest, WeightedDegenerateInputsConsumeNoDraw) {
  // The blocked fleet generator's replay arithmetic depends on knowing exactly when
  // NextWeighted draws: never for an empty vector or a non-positive finite total, always
  // otherwise (including a NaN-polluted total, whose `<= 0` test is false).
  Rng rng(29);
  Rng pristine(29);
  EXPECT_EQ(rng.NextWeighted({}), 0u);
  EXPECT_EQ(rng.NextWeighted({0.0, 0.0}), 0u);
  EXPECT_EQ(rng.NextWeighted({-1.0, 0.5}), 0u);
  EXPECT_EQ(rng.Next(), pristine.Next());  // no draw was consumed above
  const double nan = std::numeric_limits<double>::quiet_NaN();
  (void)rng.NextWeighted({nan, 1.0});
  (void)pristine.Next();  // the NaN total escapes `total <= 0`, so one draw is consumed
  EXPECT_EQ(rng.Next(), pristine.Next());
}

TEST(RngTest, WeightedSingleElementNeverUnderflows) {
  // A single positive weight must return index 0 for every draw (the old clamp
  // `weights.size() - 1` is exercised when the subtraction chain never goes negative,
  // which rounding can produce).
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(rng.NextWeighted({0.3}), 0u);
  }
}

TEST(RngTest, FillBlockMatchesNextSequence) {
  Rng bulk(37);
  Rng serial(37);
  uint64_t draws[257];
  bulk.FillBlock(std::span<uint64_t>(draws, 257));  // odd size: exercises no alignment
  for (uint64_t draw : draws) {
    EXPECT_EQ(draw, serial.Next());
  }
  // Split fills continue the same stream.
  bulk.FillBlock(std::span<uint64_t>(draws, 3));
  bulk.FillBlock(std::span<uint64_t>(draws + 3, 5));
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(draws[i], serial.Next());
  }
  EXPECT_EQ(bulk.Next(), serial.Next());
}

TEST(RngTest, SkipMatchesDiscardedNexts) {
  Rng skipped(41);
  Rng drained(41);
  skipped.Skip(0);
  EXPECT_EQ(skipped.Next(), drained.Next());
  skipped.Skip(129);
  for (int i = 0; i < 129; ++i) {
    (void)drained.Next();
  }
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(skipped.Next(), drained.Next());
  }
}

TEST(RngTest, BernoulliThresholdU53MatchesNextBernoulli) {
  // The threshold must classify every raw draw exactly as NextBernoulli does:
  // faulty iff (raw >> 11) < threshold.
  const double kProbs[] = {1e-9, 6.242e-4, 0.25, 0.5, 0.3 + 1e-16, 1.0 - 1e-16};
  Rng draw_rng(43);
  for (double p : kProbs) {
    const uint64_t threshold = BernoulliThresholdU53(p);
    for (int i = 0; i < 20000; ++i) {
      const uint64_t raw = draw_rng.Next();
      const bool via_threshold = (raw >> 11) < threshold;
      const bool via_double = static_cast<double>(raw >> 11) * 0x1.0p-53 < p;
      ASSERT_EQ(via_threshold, via_double) << "p=" << p << " raw=" << raw;
    }
    // The boundary itself must be exact, not just sampled: threshold - 1 passes,
    // threshold fails.
    if (threshold > 0 && threshold < kU53End) {
      EXPECT_LT(static_cast<double>(threshold - 1) * 0x1.0p-53, p);
      EXPECT_GE(static_cast<double>(threshold) * 0x1.0p-53, p);
    }
  }
  EXPECT_EQ(BernoulliThresholdU53(0.0), 0u);
  EXPECT_EQ(BernoulliThresholdU53(-1.0), 0u);
  EXPECT_EQ(BernoulliThresholdU53(std::numeric_limits<double>::quiet_NaN()), 0u);
  EXPECT_EQ(BernoulliThresholdU53(1.0), kU53End);
  EXPECT_EQ(BernoulliThresholdU53(2.0), kU53End);
}

TEST(RngTest, WeightedCdfSampleMatchesNextWeighted) {
  // WeightedCdf::Sample must be a drop-in for NextWeighted: same index, same draw
  // consumption, for well-behaved and adversarial weight vectors alike.
  const std::vector<std::vector<double>> kWeightSets = {
      {0.10, 0.10, 0.12, 0.06, 0.08, 0.14, 0.10, 0.16, 0.14},  // the fleet arch shares
      {1.0},
      {1.0, 3.0, 0.0},
      {0.0, 0.0, 5.0},
      {1e-300, 1.0, 1e-300},
      {0.1 + 0.2, 0.3, 0.4},  // rounding-hostile partial sums
      {5.0, -1.0, 3.0},       // negative weight: the chain can skip an index
      {},
      {0.0, 0.0},
      {std::numeric_limits<double>::infinity(), 1.0},              // non-finite fallback
      {std::numeric_limits<double>::quiet_NaN(), 1.0},             // NaN total still draws
      {std::numeric_limits<double>::max(), std::numeric_limits<double>::max()},
  };
  uint64_t seed = 47;
  for (const std::vector<double>& weights : kWeightSets) {
    const WeightedCdf cdf{std::span<const double>(weights)};
    EXPECT_EQ(cdf.size(), weights.size());
    Rng via_cdf(seed);
    Rng via_chain(seed);
    for (int i = 0; i < 20000; ++i) {
      ASSERT_EQ(cdf.Sample(via_cdf), via_chain.NextWeighted(weights))
          << "weights[0]=" << (weights.empty() ? -1.0 : weights[0]) << " i=" << i;
    }
    // Draw-consumption parity: both streams must sit at the same position.
    EXPECT_EQ(via_cdf.Next(), via_chain.Next());
    ++seed;
  }
}

TEST(RngTest, WeightedCdfBoundariesAreExact) {
  // IndexOf at bound - 1 / bound must flip the class -- the sampled test above would
  // almost never land on the exact boundary draws.
  const std::vector<double> weights = {0.10, 0.10, 0.12, 0.06, 0.08,
                                       0.14, 0.10, 0.16, 0.14};
  const WeightedCdf cdf{std::span<const double>(weights)};
  ASSERT_TRUE(cdf.exact());
  ASSERT_TRUE(cdf.draws());
  const std::span<const uint64_t> bounds = cdf.bounds_u53();
  ASSERT_EQ(bounds.size(), weights.size() - 1);
  double total = 0.0;
  for (double w : weights) {
    total += w;
  }
  for (size_t i = 0; i < bounds.size(); ++i) {
    ASSERT_GT(bounds[i], 0u);
    // Replay NextWeighted's own arithmetic at the boundary and one below it.
    const auto chain_at = [&](uint64_t u53) {
      double pick = static_cast<double>(u53) * 0x1.0p-53 * total;
      for (size_t j = 0; j < weights.size(); ++j) {
        pick -= weights[j];
        if (pick < 0.0) {
          return j;
        }
      }
      return weights.size() - 1;
    };
    EXPECT_EQ(chain_at(bounds[i] - 1), i);
    EXPECT_GT(chain_at(bounds[i]), i);
    EXPECT_EQ(cdf.IndexOf((bounds[i] - 1) << 11), i);
    EXPECT_EQ(cdf.IndexOf(bounds[i] << 11), i + 1);
  }
}

TEST(RngTest, ForkIndependentButDeterministic) {
  Rng parent1(5);
  Rng parent2(5);
  Rng child1 = parent1.Fork(99);
  Rng child2 = parent2.Fork(99);
  EXPECT_EQ(child1.Next(), child2.Next());
  Rng other = parent1.Fork(100);
  EXPECT_NE(child1.Next(), other.Next());
}

TEST(RngTest, ForkStreamsShareNoPrefix) {
  // Different tags off the same parent must give unrelated streams, and no child may
  // replay its parent's stream -- shard RNGs in the parallel hot paths rely on this.
  Rng parent(2023);
  Rng child_a = parent.Fork(0);
  Rng child_b = parent.Fork(1);
  Rng parent_copy(2023);
  for (int i = 0; i < 64; ++i) {
    const uint64_t a = child_a.Next();
    const uint64_t b = child_b.Next();
    const uint64_t p = parent_copy.Next();
    EXPECT_NE(a, b);
    EXPECT_NE(a, p);
    EXPECT_NE(b, p);
  }
}

TEST(RngTest, ForkDoesNotPerturbParent) {
  // Forking is const: the parent's stream must be byte-for-byte what it would have been
  // had the forks never happened.
  Rng forked(7);
  Rng pristine(7);
  (void)forked.Fork(1);
  EXPECT_EQ(forked.Next(), pristine.Next());
  (void)forked.Fork(2);
  (void)forked.Fork(3);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(forked.Next(), pristine.Next());
  }
}

TEST(RngTest, ForkSameSeedSameTagReproduces) {
  // (seed, tag) fully determines the child stream across separate parent instances.
  Rng parent1(42);
  Rng parent2(42);
  (void)parent1.Next();  // parent position must not matter, only its seed
  Rng child1 = parent1.Fork(17);
  Rng child2 = parent2.Fork(17);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(child1.Next(), child2.Next());
  }
}

TEST(BitsTest, DataTypeWidths) {
  EXPECT_EQ(BitWidth(DataType::kInt16), 16);
  EXPECT_EQ(BitWidth(DataType::kInt32), 32);
  EXPECT_EQ(BitWidth(DataType::kUInt32), 32);
  EXPECT_EQ(BitWidth(DataType::kFloat32), 32);
  EXPECT_EQ(BitWidth(DataType::kFloat64), 64);
  EXPECT_EQ(BitWidth(DataType::kFloat80), 80);
  EXPECT_EQ(BitWidth(DataType::kBit), 1);
  EXPECT_EQ(BitWidth(DataType::kByte), 8);
  EXPECT_EQ(BitWidth(DataType::kBin64), 64);
}

TEST(BitsTest, NumericClassification) {
  EXPECT_TRUE(IsNumeric(DataType::kInt16));
  EXPECT_TRUE(IsNumeric(DataType::kFloat80));
  EXPECT_FALSE(IsNumeric(DataType::kBin32));
  EXPECT_FALSE(IsNumeric(DataType::kByte));
  EXPECT_TRUE(IsFloatingPoint(DataType::kFloat32));
  EXPECT_FALSE(IsFloatingPoint(DataType::kInt32));
}

TEST(BitsTest, Word128BitOperations) {
  Word128 word;
  EXPECT_TRUE(word.IsZero());
  word.SetBit(0, true);
  word.SetBit(63, true);
  word.SetBit(64, true);
  word.SetBit(127, true);
  EXPECT_EQ(word.Popcount(), 4);
  EXPECT_TRUE(word.GetBit(64));
  word.FlipBit(64);
  EXPECT_FALSE(word.GetBit(64));
  EXPECT_EQ(word.Popcount(), 3);
}

TEST(BitsTest, Int32RoundTrip) {
  for (int32_t value : {0, 1, -1, 123456789, -123456789, INT32_MIN, INT32_MAX}) {
    EXPECT_EQ(Int32FromBits(BitsOfInt32(value)), value);
  }
}

TEST(BitsTest, Int16RoundTrip) {
  for (int16_t value : {int16_t{0}, int16_t{-1}, int16_t{32767}, int16_t{-32768}}) {
    EXPECT_EQ(Int16FromBits(BitsOfInt16(value)), value);
  }
}

TEST(BitsTest, FloatRoundTrip) {
  for (float value : {0.0f, 1.0f, -1.5f, 3.1415926f, 1e-30f, 1e30f}) {
    EXPECT_EQ(FloatFromBits(BitsOfFloat(value)), value);
  }
}

TEST(BitsTest, DoubleRoundTrip) {
  for (double value : {0.0, 1.0, -2.75, 6.02214076e23, 1e-300}) {
    EXPECT_EQ(DoubleFromBits(BitsOfDouble(value)), value);
  }
}

TEST(BitsTest, Float80RoundTripExactForNormals) {
  for (long double value :
       {1.0L, -1.0L, 3.14159265358979323846L, 1e100L, -2.5e-100L, 0.0L, 123456789.5L}) {
    EXPECT_EQ(Float80FromBits(BitsOfFloat80(value)), value);
  }
}

TEST(BitsTest, Float80EncodingStructure) {
  // 1.0 encodes as exponent 16383 with the explicit integer bit set and zero fraction.
  const Word128 bits = BitsOfFloat80(1.0L);
  EXPECT_EQ(bits.hi & 0x7fffu, 16383u);
  EXPECT_EQ(bits.lo, 0x8000000000000000ull);
  // Sign bit for negatives.
  const Word128 negative = BitsOfFloat80(-1.0L);
  EXPECT_TRUE(negative.GetBit(79));
}

TEST(BitsTest, Float80FractionFlipIsSmallLoss) {
  const Word128 expected = BitsOfFloat80(1.5L);
  Word128 actual = expected;
  actual.FlipBit(20);  // deep in the fraction
  const double loss = RelativePrecisionLoss(DataType::kFloat80, expected, actual);
  EXPECT_GT(loss, 0.0);
  EXPECT_LT(loss, 1e-10);
}

TEST(BitsTest, PrecisionLossIntVsFloat) {
  // Flipping bit 10 of a small int is a large relative loss; flipping fraction bit 10 of a
  // float64 is tiny (Observation 7's asymmetry).
  const Word128 int_expected = BitsOfInt32(100);
  Word128 int_actual = int_expected;
  int_actual.FlipBit(10);
  EXPECT_GT(RelativePrecisionLoss(DataType::kInt32, int_expected, int_actual), 1.0);

  const Word128 double_expected = BitsOfDouble(100.0);
  Word128 double_actual = double_expected;
  double_actual.FlipBit(10);
  EXPECT_LT(RelativePrecisionLoss(DataType::kFloat64, double_expected, double_actual), 1e-9);
}

TEST(BitsTest, PrecisionLossZeroExpected) {
  const Word128 zero = BitsOfInt32(0);
  Word128 nonzero = zero;
  nonzero.FlipBit(3);
  EXPECT_TRUE(std::isinf(RelativePrecisionLoss(DataType::kInt32, zero, nonzero)));
  EXPECT_EQ(RelativePrecisionLoss(DataType::kInt32, zero, zero), 0.0);
}

TEST(BitsTest, FractionBitCoordinates) {
  EXPECT_EQ(FractionBits(DataType::kFloat32), 23);
  EXPECT_EQ(FractionBits(DataType::kFloat64), 52);
  EXPECT_EQ(FractionBits(DataType::kFloat80), 63);
  EXPECT_EQ(ExponentBits(DataType::kFloat64), 11);
}

TEST(StatsTest, MeanVarianceStdDev) {
  const std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(values), 2.5);
  EXPECT_DOUBLE_EQ(Variance(values), 1.25);
  EXPECT_DOUBLE_EQ(StdDev(values), std::sqrt(1.25));
  EXPECT_EQ(Mean({}), 0.0);
}

TEST(StatsTest, PearsonPerfectCorrelation) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  const std::vector<double> ys = {2, 4, 6, 8, 10};
  EXPECT_NEAR(PearsonCorrelation(xs, ys), 1.0, 1e-12);
  const std::vector<double> neg = {10, 8, 6, 4, 2};
  EXPECT_NEAR(PearsonCorrelation(xs, neg), -1.0, 1e-12);
}

TEST(StatsTest, PearsonDegenerate) {
  EXPECT_EQ(PearsonCorrelation({1, 1, 1}, {2, 3, 4}), 0.0);
  EXPECT_EQ(PearsonCorrelation({1}, {2}), 0.0);
}

TEST(StatsTest, LeastSquaresRecoversLine) {
  std::vector<double> xs;
  std::vector<double> ys;
  for (int i = 0; i < 20; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i - 7.0);
  }
  const LinearFit fit = FitLeastSquares(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 1e-9);
  EXPECT_NEAR(fit.intercept, -7.0, 1e-9);
  EXPECT_NEAR(fit.r, 1.0, 1e-9);
  EXPECT_NEAR(fit.Predict(100.0), 293.0, 1e-6);
}

TEST(StatsTest, QuantileInterpolation) {
  std::vector<double> values = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(Quantile(values, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(Quantile(values, 0.5), 2.5);
}

TEST(StatsTest, FractionAtOrBelow) {
  const std::vector<double> values = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(FractionAtOrBelow(values, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(FractionAtOrBelow(values, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(FractionAtOrBelow(values, 10.0), 1.0);
}

TEST(StatsTest, HistogramBinning) {
  Histogram histogram(0.0, 10.0, 10);
  histogram.Add(0.5);
  histogram.Add(9.5);
  histogram.AddN(5.5, 2);
  histogram.Add(-3.0);   // clamps to first bin
  histogram.Add(100.0);  // clamps to last bin
  EXPECT_EQ(histogram.total(), 6u);
  EXPECT_EQ(histogram.count(0), 2u);
  EXPECT_EQ(histogram.count(9), 2u);
  EXPECT_EQ(histogram.count(5), 2u);
  EXPECT_DOUBLE_EQ(histogram.Fraction(5), 2.0 / 6.0);
  EXPECT_DOUBLE_EQ(histogram.BinCenter(0), 0.5);
}

TEST(StatsTest, MeanIgnoresNonFiniteEntries) {
  const double nan = std::nan("");
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(Mean({1.0, nan, 3.0, inf, -inf}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({nan, inf}), 0.0);  // nothing finite left
}

TEST(StatsTest, QuantileIgnoresNonFiniteEntries) {
  const double nan = std::nan("");
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(Quantile({nan, 4.0, 1.0, inf, 3.0, 2.0}, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(Quantile({nan, -inf}, 0.5), 0.0);
}

TEST(StatsTest, HistogramZeroBinsDropsSamplesSafely) {
  Histogram histogram(0.0, 10.0, 0);
  histogram.Add(5.0);
  histogram.AddN(7.0, 3);
  EXPECT_EQ(histogram.bin_count(), 0u);
  EXPECT_EQ(histogram.total(), 0u);
}

TEST(StatsTest, HistogramDegenerateRangeSplitsAtLo) {
  Histogram histogram(5.0, 5.0, 4);  // lo == hi: width collapses to 0
  EXPECT_DOUBLE_EQ(histogram.width(), 0.0);
  histogram.Add(4.0);  // <= lo: first bin
  histogram.Add(5.0);
  histogram.Add(6.0);  // > lo: last bin
  EXPECT_EQ(histogram.count(0), 2u);
  EXPECT_EQ(histogram.count(3), 1u);
  EXPECT_EQ(histogram.total(), 3u);

  Histogram inverted(10.0, 0.0, 4);  // hi < lo would make the width negative
  EXPECT_DOUBLE_EQ(inverted.width(), 0.0);
  inverted.Add(20.0);
  EXPECT_EQ(inverted.count(3), 1u);
}

TEST(StatsTest, HistogramNonFiniteBoundsCollapse) {
  const double inf = std::numeric_limits<double>::infinity();
  Histogram histogram(0.0, inf, 4);  // infinite width is degenerate, not UB
  EXPECT_DOUBLE_EQ(histogram.width(), 0.0);
  histogram.Add(1.0);
  EXPECT_EQ(histogram.count(3), 1u);
  Histogram nan_bounds(std::nan(""), 1.0, 2);
  EXPECT_DOUBLE_EQ(nan_bounds.width(), 0.0);
  nan_bounds.Add(0.5);
  EXPECT_EQ(nan_bounds.total(), 1u);
}

TEST(StatsTest, HistogramNonFiniteSamplesLandOnEdgeBins) {
  const double inf = std::numeric_limits<double>::infinity();
  Histogram histogram(0.0, 10.0, 10);
  histogram.Add(std::nan(""));
  histogram.Add(-inf);
  histogram.Add(inf);
  EXPECT_EQ(histogram.count(0), 2u);  // NaN and -inf
  EXPECT_EQ(histogram.count(9), 1u);  // +inf
  EXPECT_EQ(histogram.total(), 3u);
}

TEST(StatsTest, HistogramMergeFromRequiresSameShape) {
  Histogram a(0.0, 10.0, 5);
  Histogram b(0.0, 10.0, 5);
  a.Add(1.0);
  b.AddN(9.0, 2);
  a.MergeFrom(b);
  EXPECT_EQ(a.total(), 3u);
  EXPECT_EQ(a.count(4), 2u);
  Histogram mismatched(0.0, 20.0, 5);
  mismatched.Add(1.0);
  a.MergeFrom(mismatched);  // shape mismatch: no-op
  EXPECT_EQ(a.total(), 3u);
}

TEST(ParseTest, ParseInt64AcceptsOnlyCleanIntegers) {
  EXPECT_EQ(ParseInt64("42"), 42);
  EXPECT_EQ(ParseInt64("-7"), -7);
  EXPECT_EQ(ParseInt64("+3"), 3);
  EXPECT_FALSE(ParseInt64("").has_value());
  EXPECT_FALSE(ParseInt64(" 42").has_value());
  EXPECT_FALSE(ParseInt64("42 ").has_value());
  EXPECT_FALSE(ParseInt64("42x").has_value());
  EXPECT_FALSE(ParseInt64("0x10").has_value());
  EXPECT_FALSE(ParseInt64("99999999999999999999").has_value());  // overflow
}

TEST(ParseTest, ParseIntNarrowsWithRangeCheck) {
  EXPECT_EQ(ParseInt("2147483647"), 2147483647);
  EXPECT_FALSE(ParseInt("2147483648").has_value());
  EXPECT_FALSE(ParseInt("-2147483649").has_value());
}

TEST(ParseTest, ParseUint64RejectsNegativesInsteadOfWrapping) {
  EXPECT_EQ(ParseUint64("100000"), 100000u);
  EXPECT_EQ(ParseUint64("18446744073709551615"), 18446744073709551615ull);
  EXPECT_FALSE(ParseUint64("-5").has_value());  // strtoull would wrap this
  EXPECT_FALSE(ParseUint64("18446744073709551616").has_value());
  EXPECT_FALSE(ParseUint64("10x").has_value());
  EXPECT_FALSE(ParseUint64("").has_value());
}

TEST(ParseTest, ParseDoubleRequiresFiniteFullConsumption) {
  EXPECT_DOUBLE_EQ(ParseDouble("2.5").value(), 2.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e3").value(), -1000.0);
  EXPECT_FALSE(ParseDouble("inf").has_value());
  EXPECT_FALSE(ParseDouble("nan").has_value());
  EXPECT_FALSE(ParseDouble("1.5abc").has_value());
  EXPECT_FALSE(ParseDouble("").has_value());
  EXPECT_FALSE(ParseDouble("1e999").has_value());  // overflows to inf
}

TEST(TableTest, RendersAlignedColumns) {
  TextTable table({"name", "value"});
  table.AddRow({"alpha", "1"});
  table.AddRow({"b", "22"});
  std::ostringstream out;
  table.Print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("alpha"), std::string::npos);
  EXPECT_NE(text.find("---"), std::string::npos);
}

TEST(TableTest, Formatting) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatPermyriad(3.61e-4), "3.610 permyriad");
  EXPECT_EQ(FormatPercent(0.0488, 1), "4.9%");
}

}  // namespace
}  // namespace sdc
