// Tests for src/farron: adaptive boundary, reliable pool, priority planning, the Farron
// orchestrator against the baseline, and the protection loop.

#include <set>
#include <sstream>

#include <gtest/gtest.h>

#include "src/farron/baseline.h"
#include "src/farron/boundary.h"
#include "src/farron/farron.h"
#include "src/farron/pool.h"
#include "src/farron/priorities.h"
#include "src/farron/protection.h"

namespace sdc {
namespace {

class FarronTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { suite_ = new TestSuite(TestSuite::BuildFull()); }
  static void TearDownTestSuite() {
    delete suite_;
    suite_ = nullptr;
  }
  static TestSuite* suite_;
};

TestSuite* FarronTest::suite_ = nullptr;

// --- Adaptive boundary ---

TEST(BoundaryTest, NormalBelowBoundary) {
  AdaptiveBoundary boundary(59.0, 10);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(boundary.Observe(55.0), BoundaryDecision::kNormal);
  }
  EXPECT_DOUBLE_EQ(boundary.boundary_celsius(), 59.0);
}

TEST(BoundaryTest, RareExcursionTriggersBackoff) {
  AdaptiveBoundary boundary(59.0, 10);
  for (int i = 0; i < 10; ++i) {
    boundary.Observe(55.0);
  }
  EXPECT_EQ(boundary.Observe(61.0), BoundaryDecision::kBackoff);
  EXPECT_DOUBLE_EQ(boundary.boundary_celsius(), 59.0);  // unchanged
}

TEST(BoundaryTest, PersistentExcessRaisesBoundary) {
  AdaptiveBoundary boundary(59.0, 10, 1.0);
  // Fill the window with hot samples: more than half exceed the boundary -> learn upward.
  BoundaryDecision last = BoundaryDecision::kNormal;
  for (int i = 0; i < 12; ++i) {
    last = boundary.Observe(62.0);
  }
  EXPECT_EQ(last, BoundaryDecision::kRaised);
  EXPECT_GT(boundary.boundary_celsius(), 59.0);
}

TEST(BoundaryTest, LearningConverges) {
  AdaptiveBoundary boundary(59.0, 10, 1.0);
  for (int i = 0; i < 200; ++i) {
    boundary.Observe(63.0);
  }
  // Once the boundary passes the ambient workload temperature, raising stops.
  EXPECT_GE(boundary.boundary_celsius(), 63.0);
  EXPECT_LE(boundary.boundary_celsius(), 65.0);
  EXPECT_EQ(boundary.Observe(63.0), BoundaryDecision::kNormal);
}

TEST(BoundaryTest, AblationFixedBoundaryNeverRaises) {
  AdaptiveBoundary boundary(59.0, 10, 1.0);
  boundary.set_adaptive(false);
  for (int i = 0; i < 50; ++i) {
    const BoundaryDecision decision = boundary.Observe(62.0);
    EXPECT_EQ(decision, BoundaryDecision::kBackoff);
  }
  EXPECT_DOUBLE_EQ(boundary.boundary_celsius(), 59.0);
}

// --- Reliable pool ---

TEST(PoolTest, MaskingAndDeprecation) {
  ReliablePool pool(16);
  EXPECT_EQ(pool.UsableCores().size(), 16u);
  pool.MaskCore(3);
  pool.MaskCore(3);  // idempotent
  EXPECT_EQ(pool.masked_count(), 1);
  EXPECT_TRUE(pool.IsMasked(3));
  EXPECT_FALSE(pool.processor_deprecated());
  EXPECT_EQ(pool.UsableCores().size(), 15u);
  pool.MaskCore(5);
  EXPECT_FALSE(pool.processor_deprecated());  // exactly two is still fine
  pool.MaskCore(9);
  EXPECT_TRUE(pool.processor_deprecated());   // more than two -> deprecate
  EXPECT_TRUE(pool.UsableCores().empty());
}

// --- Priorities ---

TEST_F(FarronTest, PriorityLifecycle) {
  PriorityTracker tracker(suite_);
  EXPECT_EQ(tracker.CountWithPriority(TestPriority::kBasic), suite_->size());
  tracker.MarkActiveFromHistory({suite_->info(3).id, suite_->info(7).id, "bogus-id"});
  EXPECT_EQ(tracker.CountWithPriority(TestPriority::kActive), 2u);
  tracker.MarkSuspected(suite_->info(3).id);  // active -> suspected
  EXPECT_EQ(tracker.CountWithPriority(TestPriority::kSuspected), 1u);
  EXPECT_EQ(tracker.CountWithPriority(TestPriority::kActive), 1u);
}

TEST_F(FarronTest, RegularPlanDurationNearPaperHeadline) {
  // Paper: Farron's average one-round regular test is 1.02 h vs the baseline's 10.55 h.
  PriorityTracker tracker(suite_);
  std::vector<std::string> history;
  for (size_t i = 0; i < 73; ++i) {  // the paper's 73 effective testcases
    history.push_back(suite_->info(i * 8).id);
  }
  tracker.MarkActiveFromHistory(history);
  const std::vector<TestPlanEntry> plan =
      tracker.BuildRegularPlan({}, PriorityPlanParams());
  const double hours = PriorityTracker::PlanSeconds(plan) / 3600.0;
  EXPECT_NEAR(hours, 1.02, 0.15);
  EXPECT_EQ(plan.size(), suite_->size());  // everything still swept at least best-effort
}


TEST_F(FarronTest, PriorityPersistenceRoundTrip) {
  PriorityTracker tracker(suite_);
  tracker.MarkActiveFromHistory({suite_->info(4).id, suite_->info(9).id});
  tracker.MarkSuspected(suite_->info(9).id);
  tracker.MarkSuspected(suite_->info(17).id);
  std::stringstream stream;
  tracker.Save(stream);

  PriorityTracker restored(suite_);
  restored.Load(stream);
  EXPECT_EQ(restored.priority(4), TestPriority::kActive);
  EXPECT_EQ(restored.priority(9), TestPriority::kSuspected);
  EXPECT_EQ(restored.priority(17), TestPriority::kSuspected);
  EXPECT_EQ(restored.CountWithPriority(TestPriority::kActive), 1u);
  EXPECT_EQ(restored.CountWithPriority(TestPriority::kSuspected), 2u);
}

TEST_F(FarronTest, PriorityLoadIgnoresGarbage) {
  PriorityTracker tracker(suite_);
  std::stringstream stream("nonsense line\nactive\tno.such.case\nsuspected\t" +
                           suite_->info(2).id + "\n");
  tracker.Load(stream);
  EXPECT_EQ(tracker.CountWithPriority(TestPriority::kSuspected), 1u);
  EXPECT_EQ(tracker.CountWithPriority(TestPriority::kActive), 0u);
}

TEST_F(FarronTest, SuspectedScheduledFirstAndLongest) {
  PriorityTracker tracker(suite_);
  tracker.MarkActiveFromHistory({suite_->info(10).id});
  tracker.MarkSuspected(suite_->info(20).id);
  const std::vector<TestPlanEntry> plan =
      tracker.BuildRegularPlan({}, PriorityPlanParams());
  EXPECT_EQ(plan.front().testcase_index, 20u);
  EXPECT_DOUBLE_EQ(plan.front().duration_seconds, PriorityPlanParams().suspected_seconds);
}

TEST_F(FarronTest, FeatureFilterDowngradesIrrelevantActive) {
  PriorityTracker tracker(suite_);
  // Find one active FPU case and one active Cache case.
  const size_t fpu_case = suite_->IndicesTargeting(Feature::kFpu).front();
  const size_t cache_case = suite_->IndicesTargeting(Feature::kCache).front();
  tracker.MarkActiveFromHistory({suite_->info(fpu_case).id, suite_->info(cache_case).id});
  const std::vector<TestPlanEntry> plan =
      tracker.BuildRegularPlan({Feature::kFpu}, PriorityPlanParams());
  double fpu_seconds = 0.0;
  double cache_seconds = 0.0;
  for (const TestPlanEntry& entry : plan) {
    if (entry.testcase_index == fpu_case) {
      fpu_seconds = entry.duration_seconds;
    }
    if (entry.testcase_index == cache_case) {
      cache_seconds = entry.duration_seconds;
    }
  }
  EXPECT_DOUBLE_EQ(fpu_seconds, PriorityPlanParams().active_seconds);
  EXPECT_DOUBLE_EQ(cache_seconds, PriorityPlanParams().basic_seconds);
}

// --- Baseline ---

TEST_F(FarronTest, BaselineRoundDurationIsPaperHeadline) {
  BaselinePolicy baseline(suite_, BaselineConfig());
  EXPECT_NEAR(baseline.RoundDurationSeconds() / 3600.0, 10.55, 0.01);
  // Table 4 baseline test overhead: 0.488%.
  EXPECT_NEAR(baseline.TestOverhead() * 100.0, 0.488, 0.01);
}

TEST_F(FarronTest, BaselineDetectsApparentDefect) {
  FaultyMachine machine(FindInCatalog("FPU1"), 31);
  BaselinePolicy baseline(suite_, BaselineConfig());
  const RunReport report = baseline.RunRegularRound(machine);
  EXPECT_TRUE(report.any_error());
}

// --- Farron orchestrator ---

TEST_F(FarronTest, RegularRoundDetectsAndMasksDefectiveCore) {
  FaultyMachine machine(FindInCatalog("SIMD1"), 33);
  FarronConfig config;
  Farron farron(suite_, &machine, config);
  // Seed history so the failing vector testcases are active.
  std::vector<std::string> history;
  for (size_t index : suite_->IndicesTargeting(Feature::kVecUnit)) {
    history.push_back(suite_->info(index).id);
  }
  farron.SetActiveFromHistory(history);
  const FarronRoundSummary summary = farron.RunRegularRound({Feature::kVecUnit});
  EXPECT_TRUE(summary.report.any_error());
  // SIMD1's single defective core (pcore 5) gets masked; the processor survives.
  EXPECT_FALSE(summary.processor_deprecated);
  ASSERT_FALSE(summary.newly_masked_cores.empty());
  EXPECT_TRUE(farron.pool().IsMasked(5));
  EXPECT_EQ(farron.pool().masked_count(), 1);
  EXPECT_GT(farron.priorities().CountWithPriority(TestPriority::kSuspected), 0u);
}

TEST_F(FarronTest, HealthyMachinePassesRegularRound) {
  FaultyMachine machine(MakeArchSpec("M2"));
  FarronConfig config;
  Farron farron(suite_, &machine, config);
  const FarronRoundSummary summary = farron.RunRegularRound({});
  EXPECT_FALSE(summary.report.any_error());
  EXPECT_EQ(farron.pool().masked_count(), 0);
  EXPECT_LT(farron.TestOverhead(), BaselinePolicy(suite_, BaselineConfig()).TestOverhead());
}

TEST_F(FarronTest, MultiCoreDefectDeprecatesProcessor) {
  FaultyMachine machine(FindInCatalog("MIX1"), 35);  // all 16 cores defective
  FarronConfig config;
  Farron farron(suite_, &machine, config);
  std::vector<std::string> history;
  for (Feature feature : {Feature::kVecUnit, Feature::kAlu, Feature::kFpu}) {
    for (size_t index : suite_->IndicesTargeting(feature)) {
      history.push_back(suite_->info(index).id);
    }
  }
  farron.SetActiveFromHistory(history);
  const FarronRoundSummary summary = farron.RunRegularRound({});
  EXPECT_TRUE(summary.report.any_error());
  EXPECT_TRUE(summary.processor_deprecated);
  // Once deprecated, further rounds are no-ops.
  const FarronRoundSummary next = farron.RunRegularRound({});
  EXPECT_TRUE(next.processor_deprecated);
  EXPECT_EQ(next.report.results.size(), 0u);
}

TEST_F(FarronTest, DurationScaleTracksBoundary) {
  FaultyMachine machine(MakeArchSpec("M2"));
  FarronConfig config;
  config.initial_boundary_celsius = 59.0;
  Farron farron(suite_, &machine, config);
  EXPECT_NEAR(farron.DurationScale(), 1.0, 1e-9);
  FarronConfig cold = config;
  cold.initial_boundary_celsius = 47.0;
  Farron cold_farron(suite_, &machine, cold);
  EXPECT_LT(cold_farron.DurationScale(), 0.7);
}


TEST_F(FarronTest, CoolingControlPrecedesBackoff) {
  FaultyMachine machine(MakeArchSpec("M2"));
  FarronConfig config;
  config.enable_cooling_control = true;
  config.enable_adaptive_boundary = false;
  Farron farron(suite_, &machine, config);
  // Hold temperatures over the boundary: the controller must exhaust cooling steps first.
  int boosts = 0;
  int backoffs = 0;
  for (int i = 0; i < 10; ++i) {
    switch (farron.ControlStep(62.0)) {
      case Farron::ControlAction::kCoolingBoosted:
        ++boosts;
        break;
      case Farron::ControlAction::kWorkloadBackoff:
        ++backoffs;
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(boosts, 4);  // (2.0 - 1.0) / 0.25 steps
  EXPECT_EQ(backoffs, 6);
  EXPECT_DOUBLE_EQ(machine.cpu().thermal().cooling_boost(), 2.0);
  // Once comfortably below the boundary, the boost relaxes.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(farron.ControlStep(50.0), Farron::ControlAction::kNone);
  }
  EXPECT_DOUBLE_EQ(machine.cpu().thermal().cooling_boost(), 1.0);
}

TEST_F(FarronTest, CoolingControlDisabledGoesStraightToBackoff) {
  FaultyMachine machine(MakeArchSpec("M2"));
  FarronConfig config;
  config.enable_adaptive_boundary = false;
  Farron farron(suite_, &machine, config);
  EXPECT_EQ(farron.ControlStep(62.0), Farron::ControlAction::kWorkloadBackoff);
  EXPECT_DOUBLE_EQ(machine.cpu().thermal().cooling_boost(), 1.0);
}

// --- Protection loop ---


TEST_F(FarronTest, DiurnalWorkloadBreathes) {
  FaultyMachine machine(MakeArchSpec("M2"));
  FarronConfig config;
  Farron farron(suite_, &machine, config);
  WorkloadSpec flat;
  flat.kernel_case_index = static_cast<size_t>(suite_->IndexOf("lib.crc32.scalar.b1024"));
  flat.base_utilization = 0.4;
  flat.burst_probability = 0.0;
  const ProtectionReport flat_report =
      SimulateProtectedWorkload(farron, machine, *suite_, flat, 2.0, false);

  FaultyMachine machine2(MakeArchSpec("M2"));
  Farron farron2(suite_, &machine2, config);
  WorkloadSpec diurnal = flat;
  diurnal.diurnal_amplitude = 0.4;
  diurnal.diurnal_period_seconds = 3600.0;  // compressed "day" inside the 2 h window
  const ProtectionReport diurnal_report =
      SimulateProtectedWorkload(farron2, machine2, *suite_, diurnal, 2.0, false);
  // The peak of the diurnal swing runs hotter than the flat profile ever does.
  EXPECT_GT(diurnal_report.max_temperature, flat_report.max_temperature + 3.0);
}

TEST_F(FarronTest, ProtectionSuppressesTrickySdc) {
  // MIX1's tricky VecCrc defect triggers only above 59C. Under Farron's boundary control
  // the workload stays below it; unprotected bursts cross it and corrupt.
  const int kernel = suite_->IndexOf("lib.crc32.vector.b4096");
  ASSERT_GE(kernel, 0);
  WorkloadSpec spec;
  spec.kernel_case_index = static_cast<size_t>(kernel);
  spec.base_utilization = 0.45;
  spec.burst_probability = 0.01;
  spec.burst_seconds = 240.0;
  spec.seed = 5;

  FarronConfig config;
  config.initial_boundary_celsius = 59.0;
  config.enable_adaptive_boundary = false;  // hold the paper's 59C line

  FaultyMachine protected_machine(FindInCatalog("MIX1"), 41);
  Farron protector(suite_, &protected_machine, config);
  const ProtectionReport protected_run =
      SimulateProtectedWorkload(protector, protected_machine, *suite_, spec, 2.0, true);

  FaultyMachine unprotected_machine(FindInCatalog("MIX1"), 41);
  Farron idle(suite_, &unprotected_machine, config);
  const ProtectionReport unprotected_run =
      SimulateProtectedWorkload(idle, unprotected_machine, *suite_, spec, 2.0, false);

  EXPECT_GT(unprotected_run.max_temperature, 62.0);  // bursts run away unchecked
  EXPECT_LT(protected_run.max_temperature, unprotected_run.max_temperature);
  EXPECT_GT(protected_run.backoff_engagements, 0u);
  EXPECT_GT(protected_run.backoff_seconds, 0.0);
  EXPECT_LE(protected_run.sdc_events, unprotected_run.sdc_events);
  EXPECT_GT(unprotected_run.sdc_events, 0u);
  EXPECT_EQ(protected_run.sdc_events, 0u);
}

TEST_F(FarronTest, ProtectionIdleWorkloadNeverBacksOff) {
  const int kernel = suite_->IndexOf("lib.crc32.scalar.b1024");
  ASSERT_GE(kernel, 0);
  WorkloadSpec spec;
  spec.kernel_case_index = static_cast<size_t>(kernel);
  spec.base_utilization = 0.2;
  spec.burst_probability = 0.0;
  FaultyMachine machine(MakeArchSpec("M2"));
  FarronConfig config;
  Farron farron(suite_, &machine, config);
  const ProtectionReport report =
      SimulateProtectedWorkload(farron, machine, *suite_, spec, 1.0, true);
  EXPECT_EQ(report.backoff_engagements, 0u);
  EXPECT_EQ(report.sdc_events, 0u);
}

}  // namespace
}  // namespace sdc
