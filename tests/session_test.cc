// Tests for src/farron/session.h: the reentrant ProtectionSession against the retained
// reference loop (byte-identity of report, event log, metrics), step-quantum invariance,
// ablation configs under the session API, and budgeted round execution.

#include <cmath>
#include <limits>
#include <sstream>

#include <gtest/gtest.h>

#include "src/farron/farron.h"
#include "src/farron/protection.h"
#include "src/farron/session.h"
#include "src/fault/catalog.h"
#include "src/telemetry/event_log.h"
#include "src/telemetry/metrics.h"

namespace sdc {
namespace {

class SessionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { suite_ = new TestSuite(TestSuite::BuildFull()); }
  static void TearDownTestSuite() {
    delete suite_;
    suite_ = nullptr;
  }
  static TestSuite* suite_;
};

TestSuite* SessionTest::suite_ = nullptr;

WorkloadSpec BusySpec() {
  WorkloadSpec spec;
  spec.base_utilization = 0.55;
  spec.diurnal_amplitude = 0.2;
  spec.diurnal_period_seconds = 3600.0;
  spec.burst_probability = 0.01;
  spec.burst_seconds = 120.0;
  spec.burst_utilization = 1.0;
  spec.seed = 17;
  return spec;
}

void ExpectReportsIdentical(const ProtectionReport& a, const ProtectionReport& b) {
  EXPECT_EQ(a.simulated_hours, b.simulated_hours);
  EXPECT_EQ(a.sdc_events, b.sdc_events);
  EXPECT_EQ(a.backoff_seconds, b.backoff_seconds);
  EXPECT_EQ(a.backoff_engagements, b.backoff_engagements);
  EXPECT_EQ(a.cooling_boosts, b.cooling_boosts);
  EXPECT_EQ(a.max_temperature, b.max_temperature);
  EXPECT_EQ(a.final_boundary, b.final_boundary);
  EXPECT_EQ(a.final_cooling_boost, b.final_cooling_boost);
}

// The session-backed SimulateProtectedWorkload must reproduce the reference loop to the
// bit -- report, event log, and metrics alike.
TEST_F(SessionTest, WorkloadByteIdenticalToReference) {
  WorkloadSpec spec = BusySpec();

  FaultyMachine session_machine(FindInCatalog("MIX1"), 41);
  MetricsRegistry session_metrics;
  EventLog session_log;
  FarronConfig config;
  config.metrics = &session_metrics;
  Farron session_farron(suite_, &session_machine, config);
  session_farron.SetEventLog(&session_log);
  const ProtectionReport via_session =
      SimulateProtectedWorkload(session_farron, session_machine, *suite_, spec, 3.0, true);

  FaultyMachine reference_machine(FindInCatalog("MIX1"), 41);
  MetricsRegistry reference_metrics;
  EventLog reference_log;
  FarronConfig reference_config;
  reference_config.metrics = &reference_metrics;
  Farron reference(suite_, &reference_machine, reference_config);
  reference.SetEventLog(&reference_log);
  WorkloadSpec reference_spec = spec;
  reference_spec.use_reference_loop = true;
  const ProtectionReport via_reference = SimulateProtectedWorkload(
      reference, reference_machine, *suite_, reference_spec, 3.0, true);

  ExpectReportsIdentical(via_session, via_reference);

  std::ostringstream session_events;
  std::ostringstream reference_events;
  session_log.Dump(session_events);
  reference_log.Dump(reference_events);
  EXPECT_EQ(session_events.str(), reference_events.str());

  std::ostringstream session_text;
  std::ostringstream reference_text;
  session_metrics.Snapshot().DumpText(session_text);
  reference_metrics.Snapshot().DumpText(reference_text);
  EXPECT_EQ(session_text.str(), reference_text.str());
}

// The unprotected path (protect = false) must match too: no boundary control, only
// observation.
TEST_F(SessionTest, UnprotectedWorkloadMatchesReference) {
  WorkloadSpec spec = BusySpec();
  FaultyMachine session_machine(FindInCatalog("FPU1"), 31);
  FarronConfig config;
  Farron session_farron(suite_, &session_machine, config);
  const ProtectionReport via_session = SimulateProtectedWorkload(
      session_farron, session_machine, *suite_, spec, 2.0, false);

  FaultyMachine reference_machine(FindInCatalog("FPU1"), 31);
  Farron reference_farron(suite_, &reference_machine, config);
  WorkloadSpec reference_spec = spec;
  reference_spec.use_reference_loop = true;
  const ProtectionReport via_reference = SimulateProtectedWorkload(
      reference_farron, reference_machine, *suite_, reference_spec, 2.0, false);

  ExpectReportsIdentical(via_session, via_reference);
}

// Iterations are indivisible, so the quantum only decides how often control returns to
// the caller: 1s steps, 60s steps, and one giant step must replay the same iteration
// sequence bit for bit.
TEST_F(SessionTest, StepQuantumInvariance) {
  WorkloadSpec spec = BusySpec();
  const double hours = 1.0;
  std::vector<ProtectionReport> reports;
  for (const double quantum : {1.0, 60.0, std::numeric_limits<double>::infinity()}) {
    FaultyMachine machine(FindInCatalog("MIX1"), 41);
    FarronConfig config;
    Farron farron(suite_, &machine, config);
    SessionOptions options;
    options.protect = true;
    ProtectionSession session(&farron, &machine, suite_, spec, Rng(spec.seed), options);
    session.BeginWorkload(hours);
    while (!session.workload_done()) {
      session.Step(quantum);
    }
    reports.push_back(session.FinishWorkload());
  }
  ExpectReportsIdentical(reports[0], reports[1]);
  ExpectReportsIdentical(reports[0], reports[2]);
}

// Ablation switches must keep working through the session decomposition.
TEST_F(SessionTest, AblationConfigsMatchReference) {
  for (const bool priorities : {true, false}) {
    for (const bool adaptive : {true, false}) {
      WorkloadSpec spec = BusySpec();
      FarronConfig config;
      config.enable_priorities = priorities;
      config.enable_adaptive_boundary = adaptive;

      FaultyMachine session_machine(FindInCatalog("SIMD1"), 33);
      Farron session_farron(suite_, &session_machine, config);
      const ProtectionReport via_session = SimulateProtectedWorkload(
          session_farron, session_machine, *suite_, spec, 1.5, true);

      FaultyMachine reference_machine(FindInCatalog("SIMD1"), 33);
      Farron reference_farron(suite_, &reference_machine, config);
      WorkloadSpec reference_spec = spec;
      reference_spec.use_reference_loop = true;
      const ProtectionReport via_reference = SimulateProtectedWorkload(
          reference_farron, reference_machine, *suite_, reference_spec, 1.5, true);

      ExpectReportsIdentical(via_session, via_reference);
    }
  }
}

// An unbudgeted RunTestRound delegates to the legacy full round: same summary a direct
// Farron::RunRegularRound on a twin instance produces.
TEST_F(SessionTest, FullRoundMatchesRunRegularRound) {
  FaultyMachine session_machine(FindInCatalog("MIX1"), 35);
  FarronConfig config;
  Farron session_farron(suite_, &session_machine, config);
  SessionOptions options;
  ProtectionSession session(&session_farron, &session_machine, suite_, WorkloadSpec{},
                            Rng(5), options);
  const double consumed =
      session.RunTestRound(std::numeric_limits<double>::infinity());
  ASSERT_TRUE(session.last_round_summary().has_value());
  const FarronRoundSummary& via_session = *session.last_round_summary();

  FaultyMachine reference_machine(FindInCatalog("MIX1"), 35);
  Farron reference_farron(suite_, &reference_machine, config);
  const FarronRoundSummary via_reference = reference_farron.RunRegularRound({});

  EXPECT_EQ(via_session.plan_seconds, via_reference.plan_seconds);
  EXPECT_EQ(consumed, via_reference.plan_seconds);
  EXPECT_EQ(via_session.report.total_errors(), via_reference.report.total_errors());
  EXPECT_EQ(via_session.report.results.size(), via_reference.report.results.size());
  EXPECT_EQ(via_session.processor_deprecated, via_reference.processor_deprecated);
  EXPECT_EQ(session.completed_rounds(), 1u);
}

// Budgeted execution: consumption never overdraws the grant, progress accumulates across
// calls, and the round completes once the whole plan has been funded.
TEST_F(SessionTest, BudgetedRoundsRespectBudgetAndComplete) {
  FaultyMachine machine(FindInCatalog("FPU1"), 31);
  FarronConfig config;
  Farron farron(suite_, &machine, config);
  SessionOptions options;
  options.max_cases_per_round = 4;  // force the chunked path
  ProtectionSession session(&farron, &machine, suite_, WorkloadSpec{}, Rng(5), options);

  const double plan_seconds = session.NextRoundPlanSeconds();
  ASSERT_GT(plan_seconds, 0.0);

  double total_consumed = 0.0;
  const double budget = plan_seconds / 3.0 + 1.0;
  int calls = 0;
  while (session.completed_rounds() == 0 && calls < 64) {
    const double consumed = session.RunTestRound(budget);
    EXPECT_LE(consumed, budget + 1e-9);
    total_consumed += consumed;
    ++calls;
  }
  EXPECT_EQ(session.completed_rounds(), 1u);
  EXPECT_NEAR(total_consumed, plan_seconds, 1e-6);
  ASSERT_TRUE(session.last_round_summary().has_value());
}

// A zero budget funds nothing: no plan entry fits, nothing is consumed, no round
// completes.
TEST_F(SessionTest, ZeroBudgetConsumesNothing) {
  FaultyMachine machine(FindInCatalog("FPU1"), 31);
  FarronConfig config;
  Farron farron(suite_, &machine, config);
  SessionOptions options;
  options.max_cases_per_round = 4;
  ProtectionSession session(&farron, &machine, suite_, WorkloadSpec{}, Rng(5), options);
  EXPECT_EQ(session.RunTestRound(0.0), 0.0);
  EXPECT_EQ(session.completed_rounds(), 0u);
  EXPECT_EQ(session.scheduled_seconds(), 0.0);
}

// Once the pool deprecates the processor, further rounds are refused.
TEST_F(SessionTest, DeprecatedProcessorRefusesRounds) {
  FaultyMachine machine(FindInCatalog("MIX1"), 35);  // all 16 cores defective
  FarronConfig config;
  Farron farron(suite_, &machine, config);
  SessionOptions options;
  ProtectionSession session(&farron, &machine, suite_, WorkloadSpec{}, Rng(5), options);
  for (int round = 0; round < 8 && !farron.pool().processor_deprecated(); ++round) {
    session.RunTestRound(std::numeric_limits<double>::infinity());
  }
  ASSERT_TRUE(farron.pool().processor_deprecated());
  EXPECT_EQ(session.RunTestRound(std::numeric_limits<double>::infinity()), 0.0);
  ASSERT_TRUE(session.last_round_summary().has_value());
  EXPECT_TRUE(session.last_round_summary()->processor_deprecated);
  EXPECT_EQ(session.NextRoundPlanSeconds(), 0.0);
}

}  // namespace
}  // namespace sdc
