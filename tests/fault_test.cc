// Unit tests for src/fault: defect activation model, damage model, injector, catalog.

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "src/common/stats.h"
#include "src/fault/catalog.h"
#include "src/fault/defect.h"
#include "src/fault/injector.h"
#include "src/fault/machine.h"

namespace sdc {
namespace {

Defect SimpleDefect() {
  Defect defect;
  defect.id = "test";
  defect.feature = Feature::kFpu;
  defect.affected_ops = {OpKind::kFpMul};
  defect.affected_types = {DataType::kFloat64};
  defect.min_trigger_celsius = 50.0;
  defect.base_log10_rate = -9.0;
  defect.temp_slope = 0.15;
  defect.intensity_ref = 1e8;
  defect.intensity_exponent = 0.5;
  defect.pattern_probability = 0.0;
  return defect;
}

TEST(DefectTest, NoActivationBelowTrigger) {
  const Defect defect = SimpleDefect();
  EXPECT_EQ(defect.RatePerOp(49.9, 1e8, 0), 0.0);
  EXPECT_GT(defect.RatePerOp(50.1, 1e8, 0), 0.0);
}

TEST(DefectTest, ExponentialTemperatureGrowth) {
  const Defect defect = SimpleDefect();
  const double rate_low = defect.RatePerOp(52.0, 1e8, 0);
  const double rate_high = defect.RatePerOp(62.0, 1e8, 0);
  // 10C x 0.15 decades/C = 1.5 decades.
  EXPECT_NEAR(rate_high / rate_low, std::pow(10.0, 1.5), std::pow(10.0, 1.5) * 0.01);
}

TEST(DefectTest, UsageStressIncreasesRate) {
  const Defect defect = SimpleDefect();
  const double nominal = defect.RatePerOp(55.0, 1e8, 0);
  const double stressed = defect.RatePerOp(55.0, 4e8, 0);
  const double lighter = defect.RatePerOp(55.0, 0.25e8, 0);
  EXPECT_NEAR(stressed / nominal, 2.0, 0.01);   // sqrt(4)
  EXPECT_NEAR(lighter / nominal, 0.5, 0.01);    // sqrt(1/4)
}

TEST(DefectTest, UnknownIntensityIsNeutral) {
  const Defect defect = SimpleDefect();
  EXPECT_DOUBLE_EQ(defect.RatePerOp(55.0, 0.0, 0), defect.RatePerOp(55.0, 1e8, 0));
}

TEST(DefectTest, FrequencyCapBoundsExtrapolation) {
  Defect defect = SimpleDefect();
  defect.base_log10_rate = -4.0;  // absurdly hot defect
  const double frequency = defect.OccurrenceFrequencyPerMinute(90.0, 1e8, 0);
  EXPECT_LE(frequency, 2000.0 * 1.001);
}

TEST(DefectTest, PcoreScaleSelectsCores) {
  Defect defect = SimpleDefect();
  defect.affected_pcores = {3};
  EXPECT_EQ(defect.RatePerOp(55.0, 1e8, 0), 0.0);
  EXPECT_GT(defect.RatePerOp(55.0, 1e8, 3), 0.0);
}

TEST(DefectTest, AllCoreScaleSpread) {
  Defect defect = SimpleDefect();
  defect.pcore_rate_scale = {1.0, 0.001};
  const double fast = defect.RatePerOp(55.0, 1e8, 0);
  const double slow = defect.RatePerOp(55.0, 1e8, 1);
  EXPECT_NEAR(fast / slow, 1000.0, 1.0);
}

TEST(DefectTest, OccurrenceFrequencyUnits) {
  const Defect defect = SimpleDefect();
  const double rate = defect.RatePerOp(55.0, 1e8, 0);
  EXPECT_NEAR(defect.OccurrenceFrequencyPerMinute(55.0, 1e8, 0), rate * 1e8 * 60.0, 1e-9);
}

TEST(DefectTest, CorruptAlwaysChangesValue) {
  Defect defect = SimpleDefect();
  defect.pattern_probability = 0.5;
  Rng pattern_rng(3);
  defect.pattern_sets = {
      {DataType::kFloat64, {{MakePatternMask(DataType::kFloat64, 1, pattern_rng), 1.0}}}};
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const Word128 golden = BitsOfDouble(static_cast<double>(i) * 0.37 + 0.1);
    const Word128 corrupted = defect.Corrupt(golden, DataType::kFloat64, rng);
    EXPECT_NE(corrupted, golden);
  }
}

TEST(DefectTest, CorruptRespectsTypeWidth) {
  Defect defect = SimpleDefect();
  defect.pattern_probability = 0.0;
  Rng rng(11);
  for (int i = 0; i < 2000; ++i) {
    const Word128 golden = BitsOfRaw(0xab, 8);
    const Word128 corrupted = defect.Corrupt(golden, DataType::kByte, rng);
    EXPECT_EQ(corrupted.lo >> 8, 0u);  // nothing above bit 7
    EXPECT_EQ(corrupted.hi, 0u);
  }
}

TEST(DefectTest, StuckOneOnlyRaisesBits) {
  Defect defect = SimpleDefect();
  defect.semantics = FlipSemantics::kStuckOne;
  defect.pattern_probability = 1.0;
  Word128 mask;
  mask.SetBit(5, true);
  defect.pattern_sets = {{DataType::kInt32, {{mask, 1.0}}}};
  Rng rng(13);
  const Word128 golden = BitsOfInt32(0);  // bit 5 clear
  const Word128 corrupted = defect.Corrupt(golden, DataType::kInt32, rng);
  EXPECT_TRUE(corrupted.GetBit(5));
}

TEST(DefectTest, FloatFlipPositionsConcentrateInFraction) {
  Rng rng(17);
  int in_fraction = 0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    const int position = SampleFlipPosition(DataType::kFloat64, rng);
    ASSERT_GE(position, 0);
    ASSERT_LT(position, 64);
    in_fraction += position < FractionBits(DataType::kFloat64) ? 1 : 0;
  }
  // Observation 7: bitflips predominantly land in the fraction part.
  EXPECT_GT(static_cast<double>(in_fraction) / kSamples, 0.95);
}

TEST(DefectTest, NonNumericFlipPositionsUniform) {
  Rng rng(19);
  std::vector<int> counts(32, 0);
  constexpr int kSamples = 64000;
  for (int i = 0; i < kSamples; ++i) {
    ++counts[SampleFlipPosition(DataType::kBin32, rng)];
  }
  for (int bit = 0; bit < 32; ++bit) {
    EXPECT_NEAR(static_cast<double>(counts[bit]) / kSamples, 1.0 / 32.0, 0.01);
  }
}

TEST(DefectTest, PatternMaskHasRequestedFlipCount) {
  Rng rng(23);
  for (int flips = 1; flips <= 3; ++flips) {
    const Word128 mask = MakePatternMask(DataType::kFloat32, flips, rng);
    EXPECT_EQ(mask.Popcount(), flips);
  }
}

TEST(DefectTest, TypeClassification) {
  Defect computation = SimpleDefect();
  EXPECT_EQ(computation.type(), SdcType::kComputation);
  Defect consistency = SimpleDefect();
  consistency.feature = Feature::kCache;
  EXPECT_EQ(consistency.type(), SdcType::kConsistency);
  consistency.feature = Feature::kTxMem;
  EXPECT_EQ(consistency.type(), SdcType::kConsistency);
}

// --- Injector ---

TEST(InjectorTest, CorruptsOnlyMatchingOps) {
  Defect defect = SimpleDefect();
  defect.min_trigger_celsius = 0.0;
  defect.base_log10_rate = 0.0;  // certain activation
  DefectInjector injector({defect}, 5);
  Processor cpu(MakeArchSpec("M2"));
  cpu.SetCorruptionHook(&injector);
  cpu.SetTimeScale(1e8);  // lift the represented weight over the frequency cap
  cpu.thermal().ForceUniform(60.0);
  // Matching op/type corrupts.
  EXPECT_NE(cpu.ExecuteF64(0, OpKind::kFpMul, 1.5), 1.5);
  // Different op or datatype passes through.
  EXPECT_EQ(cpu.ExecuteF64(0, OpKind::kFpAdd, 1.5), 1.5);
  EXPECT_EQ(cpu.ExecuteF32(0, OpKind::kFpMul, 1.5f), 1.5f);
  EXPECT_GE(injector.total_activations(), 1u);
}

TEST(InjectorTest, OnsetGatesActivation) {
  Defect defect = SimpleDefect();
  defect.min_trigger_celsius = 0.0;
  defect.base_log10_rate = 0.0;
  defect.onset_months = 12.0;
  DefectInjector injector({defect}, 5);
  injector.set_age_months(6.0);
  Processor cpu(MakeArchSpec("M2"));
  cpu.SetCorruptionHook(&injector);
  cpu.SetTimeScale(1e8);
  EXPECT_EQ(cpu.ExecuteF64(0, OpKind::kFpMul, 1.5), 1.5);  // dormant
  injector.set_age_months(18.0);
  EXPECT_NE(cpu.ExecuteF64(0, OpKind::kFpMul, 1.5), 1.5);  // developed
}

TEST(InjectorTest, ActivationRateFollowsWeight) {
  Defect defect = SimpleDefect();
  defect.base_log10_rate = -6.0;
  defect.intensity_ref = 1e6;  // keeps the frequency cap above the configured rate
  DefectInjector injector({defect}, 5);
  Processor cpu(MakeArchSpec("M2"));
  cpu.SetCorruptionHook(&injector);
  cpu.SetTimeScale(1e4);  // probability per op ~ 1e-6 * 1e4 = 1e-2
  cpu.thermal().ForceUniform(defect.min_trigger_celsius);  // zero temperature excess
  constexpr int kOps = 100000;
  for (int i = 0; i < kOps; ++i) {
    cpu.ExecuteF64(0, OpKind::kFpMul, 1.0);
  }
  const double observed =
      static_cast<double>(injector.total_activations()) / static_cast<double>(kOps);
  EXPECT_NEAR(observed, 1e-2, 2e-3);
}


TEST(InjectorTest, UsageStressSeparatedFromTemperature) {
  // The Section 5 separation experiment: temperature pinned identical, only the execution
  // rate of the defective op differs -- the higher-rate run must activate more often per
  // op (stress factor = sqrt(intensity / reference)).
  auto activations_at_intensity = [](double target_intensity) {
    Defect defect = SimpleDefect();
    defect.base_log10_rate = -7.5;  // below the frequency cap, so the stress term shows
    defect.temp_slope = 0.0;
    defect.intensity_ref = 1e8;
    defect.intensity_exponent = 0.5;
    DefectInjector injector({defect}, 99);
    Processor cpu(MakeArchSpec("M2"));
    cpu.SetCorruptionHook(&injector);
    cpu.SetTimeScale(1e4);
    cpu.thermal().ForceUniform(defect.min_trigger_celsius + 1.0);
    constexpr int kBatches = 500;
    constexpr int kOpsPerBatch = 1000;
    for (int batch = 0; batch < kBatches; ++batch) {
      for (int i = 0; i < kOpsPerBatch; ++i) {
        cpu.ExecuteF64(0, OpKind::kFpMul, 1.25);
      }
      // dt chosen so ops * weight / dt equals the target intensity.
      cpu.AdvanceSeconds(kOpsPerBatch * cpu.time_scale() / target_intensity);
      cpu.thermal().ForceUniform(defect.min_trigger_celsius + 1.0);  // hold temperature
    }
    return injector.total_activations();
  };
  const uint64_t slow = activations_at_intensity(0.5e8);
  const uint64_t fast = activations_at_intensity(2.0e8);
  ASSERT_GT(slow, 50u);
  const double ratio = static_cast<double>(fast) / static_cast<double>(slow);
  EXPECT_GT(ratio, 1.6);  // sqrt(4) = 2 expected
  EXPECT_LT(ratio, 2.5);
}

TEST(InjectorTest, ResetCountersClears) {
  Defect defect = SimpleDefect();
  defect.min_trigger_celsius = 0.0;
  defect.base_log10_rate = 0.0;
  DefectInjector injector({defect}, 5);
  Processor cpu(MakeArchSpec("M2"));
  cpu.SetCorruptionHook(&injector);
  cpu.SetTimeScale(1e8);
  cpu.ExecuteF64(0, OpKind::kFpMul, 1.0);
  EXPECT_GT(injector.total_activations(), 0u);
  injector.ResetCounters();
  EXPECT_EQ(injector.total_activations(), 0u);
  EXPECT_EQ(injector.activations(0), 0u);
}

// --- Catalog ---

TEST(CatalogTest, HasTwentySevenProcessors) {
  EXPECT_EQ(StudyCatalog().size(), 27u);
}

TEST(CatalogTest, Table3NamesPresent) {
  const std::vector<std::string> names = {"MIX1", "MIX2", "SIMD1", "SIMD2", "FPU1",
                                          "FPU2", "FPU3", "FPU4", "CNST1", "CNST2"};
  for (const std::string& name : names) {
    const FaultyProcessorInfo info = FindInCatalog(name);
    EXPECT_EQ(info.cpu_id, name);
    EXPECT_FALSE(info.defects.empty());
  }
}

TEST(CatalogTest, OneSdcTypePerProcessor) {
  // Section 4.1: if a processor has multiple defective features, they share one type.
  for (const FaultyProcessorInfo& info : StudyCatalog()) {
    std::set<SdcType> types;
    for (const Defect& defect : info.defects) {
      types.insert(defect.type());
    }
    EXPECT_EQ(types.size(), 1u) << info.cpu_id;
  }
}

TEST(CatalogTest, ComputationConsistencySplitMatchesPaper) {
  int computation = 0;
  int consistency = 0;
  for (const FaultyProcessorInfo& info : StudyCatalog()) {
    (info.sdc_type() == SdcType::kComputation ? computation : consistency) += 1;
  }
  EXPECT_EQ(computation, 19);  // Section 4.1: 19 of 27
  EXPECT_EQ(consistency, 8);
}

TEST(CatalogTest, DefectivePcoreCounts) {
  EXPECT_EQ(FindInCatalog("MIX1").defective_pcore_count(), 16);
  EXPECT_EQ(FindInCatalog("SIMD1").defective_pcore_count(), 1);
  EXPECT_EQ(FindInCatalog("CNST2").defective_pcore_count(), 24);
}

TEST(CatalogTest, Mix1TrickyDefectMatchesSection5) {
  // Testcase C on MIX1 only reproduces above 59C.
  const FaultyProcessorInfo mix1 = FindInCatalog("MIX1");
  bool found = false;
  for (const Defect& defect : mix1.defects) {
    if (defect.id == "mix1-tricky-veccrc") {
      found = true;
      EXPECT_DOUBLE_EQ(defect.min_trigger_celsius, 59.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(CatalogTest, DeterministicAcrossCalls) {
  const auto first = StudyCatalog();
  const auto second = StudyCatalog();
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].cpu_id, second[i].cpu_id);
    ASSERT_EQ(first[i].defects.size(), second[i].defects.size());
    for (size_t d = 0; d < first[i].defects.size(); ++d) {
      EXPECT_EQ(first[i].defects[d].min_trigger_celsius,
                second[i].defects[d].min_trigger_celsius);
      EXPECT_EQ(first[i].defects[d].base_log10_rate, second[i].defects[d].base_log10_rate);
    }
  }
}

TEST(CatalogTest, ArchSpecsCoverM1ToM9) {
  for (int arch = 0; arch < kArchCount; ++arch) {
    const ProcessorSpec spec = MakeArchSpec(arch);
    EXPECT_EQ(spec.arch, ArchName(arch));
    EXPECT_GT(spec.physical_cores, 0);
    EXPECT_GT(spec.frequency_ghz, 1.0);
  }
  EXPECT_EQ(MakeArchSpec("M3").physical_cores, MakeArchSpec(2).physical_cores);
}

TEST(CatalogTest, TriggerRateSamplingFollowsFig9Slope) {
  Rng rng(31);
  std::vector<double> triggers;
  std::vector<double> log_frequencies;
  for (int i = 0; i < 400; ++i) {
    double trigger = 0.0;
    double base_rate = 0.0;
    SampleTriggerAndRate(rng, 1e8, &trigger, &base_rate);
    EXPECT_GE(trigger, 40.0);
    EXPECT_LE(trigger, 75.0);
    triggers.push_back(trigger);
    log_frequencies.push_back(base_rate + std::log10(60.0 * 1e8));
  }
  // Figure 9: strong negative correlation between trigger temperature and frequency.
  EXPECT_LT(PearsonCorrelation(triggers, log_frequencies), -0.7);
}

TEST(CatalogTest, RandomDefectsAreSane) {
  Rng rng(37);
  for (int i = 0; i < 200; ++i) {
    const int arch = static_cast<int>(rng.NextBelow(kArchCount));
    const int pcores = MakeArchSpec(arch).physical_cores;
    const std::vector<Defect> defects = GenerateRandomDefects(rng, arch, pcores);
    ASSERT_FALSE(defects.empty());
    std::set<SdcType> types;
    for (const Defect& defect : defects) {
      types.insert(defect.type());
      EXPECT_FALSE(defect.affected_ops.empty());
      for (int pcore : defect.affected_pcores) {
        EXPECT_GE(pcore, 0);
        EXPECT_LT(pcore, pcores);
      }
    }
    EXPECT_EQ(types.size(), 1u);
  }
}

// --- FaultyMachine ---

TEST(MachineTest, HealthyMachineHasNoHook) {
  FaultyMachine machine(MakeArchSpec("M5"));
  EXPECT_EQ(machine.injector(), nullptr);
  EXPECT_EQ(machine.cpu().corruption_hook(), nullptr);
  EXPECT_EQ(machine.info().cpu_id, "healthy");
}

TEST(MachineTest, FaultyMachineWiresInjector) {
  FaultyMachine machine(FindInCatalog("FPU1"), 7);
  ASSERT_NE(machine.injector(), nullptr);
  EXPECT_EQ(machine.cpu().corruption_hook(), machine.injector());
  EXPECT_NEAR(machine.injector()->age_months(), 0.58 * 12.0, 1e-9);
}

TEST(MachineTest, SetAllCoreUtilization) {
  FaultyMachine machine(MakeArchSpec("M2"));
  machine.SetAllCoreUtilization(0.8);
  for (int pcore = 0; pcore < machine.cpu().spec().physical_cores; ++pcore) {
    EXPECT_DOUBLE_EQ(machine.cpu().core_utilization(pcore), 0.8);
  }
}

}  // namespace
}  // namespace sdc
