// Tests for the deterministic trace/span layer (src/telemetry/trace.h): the recorder and
// delta semantics, the byte-identity of WriteTraceJson's sim timeline across thread
// counts and execution modes, the per-detection provenance invariants, and the toolchain
// and protection-loop instrumentation.

#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/farron/farron.h"
#include "src/farron/protection.h"
#include "src/fleet/pipeline.h"
#include "src/fleet/population.h"
#include "src/fleet/stream.h"
#include "src/report/exporters.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace sdc {
namespace {

constexpr uint64_t kFleetSize = 30000;

std::string SimTraceJson(const TraceRecorder& recorder) {
  std::ostringstream out;
  WriteTraceJson(out, recorder.Snapshot(), /*include_host=*/false);
  return out.str();
}

TEST(TraceDeltaTest, MergePreservesOrder) {
  TraceDelta first;
  first.Add(MakeTraceSpan("a", "cat", kTraceTrackGenerate, 0.0, 1.0));
  TraceDelta second;
  second.Add(MakeTraceSpan("b", "cat", kTraceTrackGenerate, 1.0, 1.0));
  second.Add(MakeTraceInstant("c", "cat", kTraceTrackGenerate, 1.5));
  first.MergeFrom(std::move(second));
  ASSERT_EQ(first.events().size(), 3u);
  EXPECT_EQ(first.events()[0].name, "a");
  EXPECT_EQ(first.events()[1].name, "b");
  EXPECT_EQ(first.events()[2].name, "c");
  EXPECT_EQ(first.events()[2].phase, 'i');
}

TEST(TraceRecorderTest, SegregatesDomainsAndClears) {
  TraceRecorder recorder;
  TraceDelta delta;
  delta.Add(MakeTraceSpan("sim.span", "cat", kTraceTrackScreen, 10.0, 5.0));
  recorder.MergeDelta(std::move(delta));
  recorder.RecordHostSpan("host.span", "cat", kTraceTrackScreen, 0.0, 0.25);
  const TraceSnapshot snapshot = recorder.Snapshot();
  ASSERT_EQ(snapshot.sim.size(), 1u);
  ASSERT_EQ(snapshot.host.size(), 1u);
  EXPECT_EQ(snapshot.sim[0].name, "sim.span");
  EXPECT_EQ(snapshot.host[0].name, "host.span");
  EXPECT_DOUBLE_EQ(snapshot.host[0].duration, 0.25 * 1e6);  // seconds -> microseconds
  recorder.Clear();
  EXPECT_TRUE(recorder.Snapshot().sim.empty());
  EXPECT_TRUE(recorder.Snapshot().host.empty());
}

TEST(TraceRecorderTest, ScopedHostSpanToleratesNull) {
  TraceRecorder recorder;
  {
    TraceRecorder::ScopedHostSpan span(&recorder, "s", "cat", kTraceTrackToolchain);
  }
  {
    TraceRecorder::ScopedHostSpan null_span(nullptr, "s", "cat", kTraceTrackToolchain);
  }
  EXPECT_EQ(recorder.Snapshot().host.size(), 1u);
}

class TraceFleetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { suite_ = new TestSuite(TestSuite::BuildFull()); }
  static void TearDownTestSuite() {
    delete suite_;
    suite_ = nullptr;
  }

  // Materialized generate+screen with a recorder attached.
  static ScreeningStats RunMaterialized(int threads, TraceRecorder* recorder,
                                        MetricsRegistry* metrics = nullptr,
                                        bool reference_model = false) {
    PopulationConfig population;
    population.processor_count = kFleetSize;
    population.threads = threads;
    population.trace = recorder;
    population.metrics = metrics;
    const FleetPopulation fleet = FleetPopulation::Generate(population);
    ScreeningPipeline pipeline(suite_);
    ScreeningConfig screening;
    screening.threads = threads;
    screening.trace = recorder;
    screening.metrics = metrics;
    screening.use_reference_model = reference_model;
    return pipeline.Run(fleet, screening);
  }

  // Fused streaming generate+screen with a recorder attached.
  static ScreeningStats RunStreaming(int threads, TraceRecorder* recorder) {
    PopulationConfig population;
    population.processor_count = kFleetSize;
    population.threads = threads;
    population.trace = recorder;
    FleetShardStream stream(population);
    ScreeningPipeline pipeline(suite_);
    ScreeningConfig screening;
    screening.threads = threads;
    screening.trace = recorder;
    StreamingScreen screen(&pipeline, screening);
    stream.Drive({&screen});
    return screen.TakeStats();
  }

  static TestSuite* suite_;
};

TestSuite* TraceFleetTest::suite_ = nullptr;

TEST_F(TraceFleetTest, SimTraceIsByteIdenticalAcrossThreadCounts) {
  // SDC_THREADS would override the per-config thread counts and defeat the comparison.
  ASSERT_EQ(std::getenv("SDC_THREADS"), nullptr);
  TraceRecorder at1;
  RunMaterialized(1, &at1);
  const std::string baseline = SimTraceJson(at1);
  for (int threads : {2, 8}) {
    TraceRecorder recorder;
    RunMaterialized(threads, &recorder);
    EXPECT_EQ(SimTraceJson(recorder), baseline) << "threads=" << threads;
  }
  EXPECT_NE(baseline.find("generate.shard"), std::string::npos);
  EXPECT_NE(baseline.find("screen.subshard"), std::string::npos);
  EXPECT_NE(baseline.find("\"detection\""), std::string::npos);
}

TEST_F(TraceFleetTest, StreamingSimTraceMatchesMaterializedAtEveryThreadCount) {
  ASSERT_EQ(std::getenv("SDC_THREADS"), nullptr);
  TraceRecorder materialized;
  RunMaterialized(1, &materialized);
  const std::string baseline = SimTraceJson(materialized);
  for (int threads : {1, 2, 8}) {
    TraceRecorder recorder;
    RunStreaming(threads, &recorder);
    EXPECT_EQ(SimTraceJson(recorder), baseline) << "streaming threads=" << threads;
  }
}

TEST_F(TraceFleetTest, EveryDetectionCarriesConsistentProvenance) {
  MetricsRegistry registry;
  TraceRecorder recorder;
  const ScreeningStats stats = RunMaterialized(4, &recorder, &registry);
  ASSERT_GT(stats.detections.size(), 0u);
  ASSERT_EQ(stats.provenance.size(), stats.detections.size());
  ScreeningConfig defaults;
  for (size_t i = 0; i < stats.detections.size(); ++i) {
    const ProcessorOutcome& outcome = stats.detections[i];
    const DetectionProvenance& record = stats.provenance[i];
    EXPECT_EQ(record.serial, outcome.serial);
    EXPECT_EQ(record.arch_index, outcome.arch_index);
    EXPECT_EQ(record.stage, outcome.stage);
    EXPECT_DOUBLE_EQ(record.month, outcome.month);
    EXPECT_EQ(record.sub_shard, outcome.serial / kScreeningShardGrain);
    EXPECT_EQ(record.rng_stream, record.sub_shard);
    EXPECT_GE(record.defect_count, 1u);
    EXPECT_FALSE(record.defect_id.empty());
    EXPECT_DOUBLE_EQ(
        record.stage_temperature_celsius,
        defaults.stages[static_cast<size_t>(record.stage)].temperature_celsius);
  }
  // The metrics bridge sees the same totals, which is what check_trace_json.py
  // cross-checks end to end through sdcctl.
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterOr("screening.provenance.records"), stats.total_detected());
  EXPECT_EQ(snapshot.CounterOr("screening.detected"), stats.total_detected());
}

TEST_F(TraceFleetTest, ReferenceModelEmitsIdenticalProvenance) {
  TraceRecorder memoized_recorder;
  TraceRecorder reference_recorder;
  const ScreeningStats memoized = RunMaterialized(2, &memoized_recorder);
  const ScreeningStats reference =
      RunMaterialized(2, &reference_recorder, nullptr, /*reference_model=*/true);
  ASSERT_EQ(memoized.provenance.size(), reference.provenance.size());
  for (size_t i = 0; i < memoized.provenance.size(); ++i) {
    EXPECT_EQ(memoized.provenance[i].serial, reference.provenance[i].serial);
    EXPECT_EQ(memoized.provenance[i].defect_id, reference.provenance[i].defect_id);
    EXPECT_EQ(memoized.provenance[i].defect_count, reference.provenance[i].defect_count);
    EXPECT_EQ(memoized.provenance[i].stage, reference.provenance[i].stage);
    EXPECT_DOUBLE_EQ(memoized.provenance[i].onset_months,
                     reference.provenance[i].onset_months);
    EXPECT_DOUBLE_EQ(memoized.provenance[i].min_trigger_celsius,
                     reference.provenance[i].min_trigger_celsius);
  }
}

TEST_F(TraceFleetTest, DetectionInstantsMatchProvenanceCount) {
  TraceRecorder recorder;
  const ScreeningStats stats = RunStreaming(4, &recorder);
  const TraceSnapshot snapshot = recorder.Snapshot();
  uint64_t instants = 0;
  uint64_t subshard_spans = 0;
  for (const TraceEvent& event : snapshot.sim) {
    if (event.name == "detection") {
      ++instants;
    }
    if (event.name == "screen.subshard") {
      ++subshard_spans;
    }
  }
  EXPECT_EQ(instants, stats.provenance.size());
  EXPECT_EQ(instants, stats.total_detected());
  EXPECT_EQ(subshard_spans,
            (kFleetSize + kScreeningShardGrain - 1) / kScreeningShardGrain);
}

TEST_F(TraceFleetTest, NullRecorderRecordsNothingAndChangesNothing) {
  // The zero-cost contract's functional half: stats are the same object with tracing on,
  // off, and with metrics detached.
  TraceRecorder recorder;
  const ScreeningStats traced = RunMaterialized(2, &recorder);
  const ScreeningStats untraced = RunMaterialized(2, nullptr);
  EXPECT_EQ(traced.total_detected(), untraced.total_detected());
  EXPECT_EQ(traced.detections.size(), untraced.detections.size());
  EXPECT_EQ(traced.provenance.size(), untraced.provenance.size());
}

TEST_F(TraceFleetTest, SummaryAttributesSimTimeByCategory) {
  TraceRecorder recorder;
  RunStreaming(2, &recorder);
  const TraceSummary summary = SummarizeTrace(recorder.Snapshot(), 3);
  EXPECT_GT(summary.sim_events, 0u);
  EXPECT_GT(summary.host_spans, 0u);
  EXPECT_LE(summary.slowest_host.size(), 3u);
  bool saw_generate = false;
  bool saw_screen = false;
  for (const TraceCategorySummary& category : summary.categories) {
    if (category.category == "generate") {
      saw_generate = true;
      // Generation spans tile the serial axis exactly once.
      EXPECT_DOUBLE_EQ(category.sim_duration_total, static_cast<double>(kFleetSize));
    }
    if (category.category == "screen") {
      saw_screen = true;
    }
  }
  EXPECT_TRUE(saw_generate);
  EXPECT_TRUE(saw_screen);
  std::ostringstream out;
  summary.DumpText(out);
  EXPECT_NE(out.str().find("category generate"), std::string::npos);
  EXPECT_NE(out.str().find("slowest host spans"), std::string::npos);
}

class TraceToolchainTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { suite_ = new TestSuite(TestSuite::BuildFull()); }
  static void TearDownTestSuite() {
    delete suite_;
    suite_ = nullptr;
  }
  static TestSuite* suite_;
};

TestSuite* TraceToolchainTest::suite_ = nullptr;

TEST_F(TraceToolchainTest, PlanTraceIsThreadCountInvariant) {
  ASSERT_EQ(std::getenv("SDC_THREADS"), nullptr);
  const std::vector<TestPlanEntry> plan = {{0, 4.0}, {1, 6.0}, {2, 2.0}};
  auto run = [&](int threads) {
    TestFramework framework(suite_);
    FaultyMachine machine(FindInCatalog("SIMD1"), 31);
    TestRunConfig config;
    config.time_scale = 2e7;
    config.seed = 5;
    config.parallel_plan_entries = true;
    config.threads = threads;
    TraceRecorder recorder;
    config.trace = &recorder;
    framework.RunPlan(machine, plan, config);
    return SimTraceJson(recorder);
  };
  const std::string baseline = run(1);
  EXPECT_EQ(run(4), baseline);
  EXPECT_NE(baseline.find("toolchain.entry"), std::string::npos);
}

TEST_F(TraceToolchainTest, PlanEntriesSpanBackToBackInPlanOrder) {
  const std::vector<TestPlanEntry> plan = {{0, 4.0}, {1, 6.0}, {2, 2.0}};
  TestFramework framework(suite_);
  FaultyMachine machine(FindInCatalog("SIMD1"), 31);
  TestRunConfig config;
  config.time_scale = 2e7;
  TraceRecorder recorder;
  config.trace = &recorder;
  framework.RunPlan(machine, plan, config);
  const TraceSnapshot snapshot = recorder.Snapshot();
  std::vector<const TraceEvent*> entries;
  for (const TraceEvent& event : snapshot.sim) {
    if (event.name == "toolchain.entry") {
      entries.push_back(&event);
    }
  }
  ASSERT_EQ(entries.size(), plan.size());
  double cursor = 0.0;
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_DOUBLE_EQ(entries[i]->timestamp, cursor);
    EXPECT_DOUBLE_EQ(entries[i]->duration, plan[i].duration_seconds * 1e6);
    ASSERT_FALSE(entries[i]->str_args.empty());
    EXPECT_EQ(entries[i]->str_args[0].second, suite_->info(plan[i].testcase_index).id);
    cursor += entries[i]->duration;
  }
  // The serial plan still records the host-domain plan span.
  ASSERT_FALSE(snapshot.host.empty());
  EXPECT_EQ(snapshot.host.back().name, "toolchain.plan");
}

TEST_F(TraceToolchainTest, ProtectionRunEmitsSpanAndBackoffInstants) {
  FaultyMachine machine(MakeArchSpec("M2"));
  FarronConfig config;
  config.enable_adaptive_boundary = false;
  TraceRecorder recorder;
  config.trace = &recorder;
  Farron farron(suite_, &machine, config);
  WorkloadSpec spec;
  spec.kernel_case_index = static_cast<size_t>(suite_->IndexOf("lib.crc32.scalar.b1024"));
  spec.base_utilization = 0.45;
  spec.burst_probability = 0.02;
  spec.burst_seconds = 120.0;
  const ProtectionReport report =
      SimulateProtectedWorkload(farron, machine, *suite_, spec, 1.0, true);
  const TraceSnapshot snapshot = recorder.Snapshot();
  uint64_t runs = 0;
  uint64_t engaged = 0;
  uint64_t released = 0;
  for (const TraceEvent& event : snapshot.sim) {
    if (event.name == "protection.run") {
      ++runs;
      EXPECT_EQ(event.track, kTraceTrackProtection);
      EXPECT_NEAR(event.duration, 3600.0 * 1e6, 3600.0 * 1e6 * 0.05);
    }
    if (event.name == "backoff.engaged") {
      ++engaged;
    }
    if (event.name == "backoff.released") {
      ++released;
    }
  }
  EXPECT_EQ(runs, 1u);
  EXPECT_EQ(engaged, report.backoff_engagements);
  EXPECT_GE(engaged, released);
  EXPECT_LE(engaged, released + 1);
}

TEST(TraceJsonTest, DocumentShapeAndHostExclusion) {
  TraceRecorder recorder;
  TraceDelta delta;
  TraceEvent span = MakeTraceSpan("s", "cat", kTraceTrackScreen, 1.0, 2.0);
  span.str_args.emplace_back("key", "value \"quoted\"");
  span.num_args.emplace_back("n", 3.5);
  delta.Add(std::move(span));
  recorder.MergeDelta(std::move(delta));
  recorder.RecordHostSpan("wall", "cat", kTraceTrackScreen, 0.0, 1.0);
  std::ostringstream with_host;
  WriteTraceJson(with_host, recorder.Snapshot(), /*include_host=*/true);
  std::ostringstream sim_only;
  WriteTraceJson(sim_only, recorder.Snapshot(), /*include_host=*/false);
  EXPECT_NE(with_host.str().find("\"wall\""), std::string::npos);
  EXPECT_EQ(sim_only.str().find("\"wall\""), std::string::npos);
  EXPECT_NE(sim_only.str().find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(sim_only.str().find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(sim_only.str().find("\"value \\\"quoted\\\"\""), std::string::npos);
  EXPECT_NE(sim_only.str().find("\"hostEventsIncluded\":false"), std::string::npos);
}

}  // namespace
}  // namespace sdc
