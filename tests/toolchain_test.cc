// Tests for src/toolchain: the 633-case registry, the testcase kernels' self-checking
// behaviour on healthy and seeded-defect machines, and the framework driver.

#include <set>

#include <gtest/gtest.h>

#include "src/fault/catalog.h"
#include "src/toolchain/cases.h"
#include "src/toolchain/framework.h"
#include "src/toolchain/registry.h"

namespace sdc {
namespace {

// A machine with one hot defect on the given ops/types. The default rate saturates the
// per-op corruption probability; pass a lower `base_log10_rate` where partial activation is
// needed (a coherence defect that drops *every* invalidation leaves the consumer with a
// fully consistent stale snapshot that no checksum can flag).
FaultyMachine SeededMachine(std::vector<OpKind> ops, std::vector<DataType> types,
                            Feature feature, uint64_t seed,
                            double base_log10_rate = -2.0) {
  FaultyProcessorInfo info;
  info.cpu_id = "seeded";
  info.arch = "M2";
  info.age_years = 1.0;
  info.spec = MakeArchSpec("M2");
  Defect defect;
  defect.id = "seeded";
  defect.feature = feature;
  defect.affected_ops = std::move(ops);
  defect.affected_types = std::move(types);
  defect.min_trigger_celsius = 0.0;
  defect.base_log10_rate = base_log10_rate;
  defect.temp_slope = 0.0;
  defect.intensity_ref = 0.0;  // disable the stress term entirely
  defect.pattern_probability = 0.0;
  info.defects.push_back(std::move(defect));
  return FaultyMachine(info, seed);
}

TestRunConfig FastConfig() {
  TestRunConfig config;
  config.time_scale = 1e5;
  config.seed = 42;
  config.pcores_under_test = {0};
  return config;
}

// --- Registry ---

TEST(RegistryTest, FullSuiteHas633Cases) {
  TestSuite suite = TestSuite::BuildFull();
  EXPECT_EQ(suite.size(), kFullSuiteSize);
}

TEST(RegistryTest, AllIdsUnique) {
  TestSuite suite = TestSuite::BuildFull();
  std::set<std::string> ids;
  for (size_t i = 0; i < suite.size(); ++i) {
    ids.insert(suite.info(i).id);
  }
  EXPECT_EQ(ids.size(), suite.size());
}

TEST(RegistryTest, EveryFeatureTargeted) {
  TestSuite suite = TestSuite::BuildFull();
  for (Feature feature : {Feature::kAlu, Feature::kVecUnit, Feature::kFpu, Feature::kCache,
                          Feature::kTxMem}) {
    EXPECT_FALSE(suite.IndicesTargeting(feature).empty()) << FeatureName(feature);
  }
}

TEST(RegistryTest, ConsistencyCasesAreMultithreaded) {
  TestSuite suite = TestSuite::BuildFull();
  for (size_t i = 0; i < suite.size(); ++i) {
    const TestcaseInfo& info = suite.info(i);
    const bool consistency_target =
        info.target == Feature::kCache || info.target == Feature::kTxMem;
    EXPECT_EQ(info.multithreaded, consistency_target) << info.id;
  }
}

TEST(RegistryTest, AllThreeStylesPresent) {
  TestSuite suite = TestSuite::BuildFull();
  std::set<TestcaseStyle> styles;
  for (size_t i = 0; i < suite.size(); ++i) {
    styles.insert(suite.info(i).style);
  }
  EXPECT_EQ(styles.size(), 3u);
}

TEST(RegistryTest, IndexOfFindsKnownCases) {
  TestSuite suite = TestSuite::BuildFull();
  EXPECT_GE(suite.IndexOf("lib.crc32.scalar.b1024"), 0);
  EXPECT_GE(suite.IndexOf("mt.tx.invariant.r50"), 0);
  EXPECT_EQ(suite.IndexOf("no.such.case"), -1);
}

TEST(RegistryTest, SampledSuiteIsSubset) {
  TestSuite sampled = TestSuite::BuildSampled(10);
  EXPECT_NEAR(static_cast<double>(sampled.size()), 633.0 / 10.0, 1.0);
}

// --- Healthy machines never report errors ---

TEST(TestcaseTest, HealthySweepHasZeroErrors) {
  TestSuite suite = TestSuite::BuildSampled(7);  // ~90 cases across all families
  TestFramework framework(&suite);
  FaultyMachine machine(MakeArchSpec("M2"));
  std::vector<TestPlanEntry> plan;
  for (size_t i = 0; i < suite.size(); ++i) {
    plan.push_back({i, 0.5});
  }
  const RunReport report = framework.RunPlan(machine, plan, FastConfig());
  EXPECT_EQ(report.total_errors(), 0u);
  EXPECT_FALSE(report.any_error());
}

// --- Seeded defects are detected by the matching testcases ---

TEST(TestcaseTest, ComputationDefectDetectedByMatchingCase) {
  TestSuite suite = TestSuite::BuildFull();
  TestFramework framework(&suite);
  FaultyMachine machine =
      SeededMachine({OpKind::kFpArctan}, {DataType::kFloat64}, Feature::kFpu, 3);
  const int matching = suite.IndexOf("lib.math.fp_arctan.f64.n256");
  const int unrelated = suite.IndexOf("lib.crc32.scalar.b1024");
  ASSERT_GE(matching, 0);
  ASSERT_GE(unrelated, 0);
  const RunReport report = framework.RunPlan(
      machine, {{static_cast<size_t>(matching), 2.0}, {static_cast<size_t>(unrelated), 2.0}},
      FastConfig());
  EXPECT_GT(report.results[0].errors, 0u);
  EXPECT_EQ(report.results[1].errors, 0u);
}

TEST(TestcaseTest, RecordsCarryExpectedActualBits) {
  TestSuite suite = TestSuite::BuildFull();
  TestFramework framework(&suite);
  FaultyMachine machine =
      SeededMachine({OpKind::kVecFmaF32}, {DataType::kFloat32}, Feature::kVecUnit, 5);
  const int index = suite.IndexOf("vec.vec_fma_f32.f32.l8.n128");
  ASSERT_GE(index, 0);
  const RunReport report =
      framework.RunPlan(machine, {{static_cast<size_t>(index), 1.0}}, FastConfig());
  ASSERT_GT(report.records.size(), 0u);
  for (const SdcRecord& record : report.records) {
    EXPECT_EQ(record.sdc_type, SdcType::kComputation);
    EXPECT_EQ(record.type, DataType::kFloat32);
    EXPECT_NE(record.expected, record.actual);
    EXPECT_GT(record.FlipMask().Popcount(), 0);
    EXPECT_GT(record.temperature, 20.0);
  }
}

TEST(TestcaseTest, CoherenceDefectDetectedByHandoffCase) {
  TestSuite suite = TestSuite::BuildFull();
  TestFramework framework(&suite);
  FaultyMachine machine = SeededMachine({OpKind::kStore}, {}, Feature::kCache, 7, -5.5);
  const int index = suite.IndexOf("mt.coherence.handoff.b256.r50");
  ASSERT_GE(index, 0);
  TestRunConfig config = FastConfig();
  config.pcores_under_test = {0, 1};
  const RunReport report =
      framework.RunPlan(machine, {{static_cast<size_t>(index), 5.0}}, config);
  EXPECT_GT(report.total_errors(), 0u);
  for (const SdcRecord& record : report.records) {
    EXPECT_EQ(record.sdc_type, SdcType::kConsistency);
  }
}

TEST(TestcaseTest, TxDefectDetectedByInvariantCase) {
  TestSuite suite = TestSuite::BuildFull();
  TestFramework framework(&suite);
  FaultyMachine machine = SeededMachine({OpKind::kTxCommit}, {}, Feature::kTxMem, 9);
  const int index = suite.IndexOf("mt.tx.invariant.r50");
  ASSERT_GE(index, 0);
  TestRunConfig config = FastConfig();
  config.pcores_under_test = {0, 1};
  const RunReport report =
      framework.RunPlan(machine, {{static_cast<size_t>(index), 5.0}}, config);
  EXPECT_GT(report.total_errors(), 0u);
}

TEST(TestcaseTest, LockCounterDetectsCoherenceDefect) {
  TestSuite suite = TestSuite::BuildFull();
  TestFramework framework(&suite);
  FaultyMachine machine = SeededMachine({OpKind::kStore}, {}, Feature::kCache, 11);
  const int index = suite.IndexOf("mt.lock.counter.n100");
  ASSERT_GE(index, 0);
  TestRunConfig config = FastConfig();
  config.pcores_under_test = {0, 1};
  const RunReport report =
      framework.RunPlan(machine, {{static_cast<size_t>(index), 5.0}}, config);
  EXPECT_GT(report.total_errors(), 0u);
}

TEST(TestcaseTest, SingleCoreDefectOnlyFiresOnItsCore) {
  TestSuite suite = TestSuite::BuildFull();
  TestFramework framework(&suite);
  FaultyProcessorInfo info;
  info.cpu_id = "single";
  info.arch = "M2";
  info.age_years = 1.0;
  info.spec = MakeArchSpec("M2");
  Defect defect;
  defect.id = "single";
  defect.feature = Feature::kFpu;
  defect.affected_ops = {OpKind::kFpMul};
  defect.affected_types = {DataType::kFloat64};
  defect.affected_pcores = {5};
  defect.min_trigger_celsius = 0.0;
  defect.base_log10_rate = -2.0;
  defect.temp_slope = 0.0;
  defect.intensity_ref = 0.0;
  info.defects.push_back(defect);
  FaultyMachine machine(info, 13);
  const int index = suite.IndexOf("loop.fp_mul.f64.n480");
  ASSERT_GE(index, 0);
  TestRunConfig config = FastConfig();
  config.pcores_under_test.clear();  // test all cores
  const RunReport report =
      framework.RunPlan(machine, {{static_cast<size_t>(index), 8.0}}, config);
  const TestcaseResult& result = report.results.front();
  EXPECT_GT(result.errors_per_pcore[5], 0u);
  for (size_t pcore = 0; pcore < result.errors_per_pcore.size(); ++pcore) {
    if (pcore != 5) {
      EXPECT_EQ(result.errors_per_pcore[pcore], 0u) << pcore;
    }
  }
}

// --- Framework behaviour ---

TEST(FrameworkTest, OpHistogramMatchesKernel) {
  TestSuite suite = TestSuite::BuildFull();
  TestFramework framework(&suite);
  FaultyMachine machine(MakeArchSpec("M2"));
  const int index = suite.IndexOf("lib.math.fp_arctan.f64.n256");
  ASSERT_GE(index, 0);
  const RunReport report =
      framework.RunPlan(machine, {{static_cast<size_t>(index), 1.0}}, FastConfig());
  const TestcaseResult& result = report.results.front();
  EXPECT_GT(result.op_histogram[static_cast<int>(OpKind::kFpArctan)], 0u);
  EXPECT_EQ(result.op_histogram[static_cast<int>(OpKind::kVecFmaF32)], 0u);
}

TEST(FrameworkTest, SimultaneousModeRunsHotter) {
  TestSuite suite = TestSuite::BuildFull();
  TestFramework framework(&suite);
  const int index = suite.IndexOf("loop.fp_mul.f64.n480");
  ASSERT_GE(index, 0);

  FaultyMachine sequential_machine(MakeArchSpec("M2"));
  TestRunConfig sequential = FastConfig();
  sequential.pcores_under_test.clear();
  framework.RunPlan(sequential_machine, {{static_cast<size_t>(index), 30.0}}, sequential);
  const double sequential_temp = sequential_machine.cpu().core_temperature(0);

  FaultyMachine hot_machine(MakeArchSpec("M2"));
  TestRunConfig hot = sequential;
  hot.simultaneous_cores = true;
  hot.burn_in_seconds = 300.0;
  framework.RunPlan(hot_machine, {{static_cast<size_t>(index), 30.0}}, hot);
  const double hot_temp = hot_machine.cpu().core_temperature(0);

  EXPECT_GT(hot_temp, sequential_temp + 8.0);
}

TEST(FrameworkTest, PinnedTemperatureHolds) {
  TestSuite suite = TestSuite::BuildFull();
  TestFramework framework(&suite);
  FaultyMachine machine(MakeArchSpec("M5"));
  TestRunConfig config = FastConfig();
  config.pin_temperature_celsius = 63.0;
  const int index = suite.IndexOf("loop.fp_add.f64.n224");
  ASSERT_GE(index, 0);
  framework.RunPlan(machine, {{static_cast<size_t>(index), 5.0}}, config);
  EXPECT_NEAR(machine.cpu().core_temperature(0), 63.0, 1e-6);
}


TEST(FrameworkTest, RemainingHeatEnablesDetection) {
  // Observation 10's test-order anecdote: a temperature-gated defect reproduces only when
  // a stressful phase ran just before, leaving the heatsink hot.
  TestSuite suite = TestSuite::BuildFull();
  TestFramework framework(&suite);
  FaultyProcessorInfo info;
  info.cpu_id = "heat-gated";
  info.arch = "M2";
  info.age_years = 1.0;
  info.spec = MakeArchSpec("M2");
  Defect defect;
  defect.id = "heat-gated";
  defect.feature = Feature::kFpu;
  defect.affected_ops = {OpKind::kFpArctan};
  defect.affected_types = {DataType::kFloat64};
  defect.affected_pcores = {0};
  defect.min_trigger_celsius = 62.0;  // above anything single-core testing reaches
  defect.base_log10_rate = -5.0;
  defect.temp_slope = 0.0;
  defect.intensity_ref = 0.0;
  info.defects.push_back(defect);
  const int index = suite.IndexOf("lib.math.fp_arctan.f64.n256");
  ASSERT_GE(index, 0);

  // Cold: the testcase alone cannot reach 62C.
  FaultyMachine cold(info, 71);
  TestRunConfig cold_config;
  cold_config.time_scale = 1e6;
  cold_config.seed = 5;
  cold_config.pcores_under_test = {0};
  const RunReport cold_report =
      framework.RunPlan(cold, {{static_cast<size_t>(index), 30.0}}, cold_config);
  EXPECT_EQ(cold_report.total_errors(), 0u);

  // Preheated: a preceding all-core stress phase leaves the package hot enough.
  FaultyMachine hot(info, 71);
  TestRunConfig hot_config = cold_config;
  hot_config.burn_in_seconds = 600.0;
  const RunReport hot_report =
      framework.RunPlan(hot, {{static_cast<size_t>(index), 30.0}}, hot_config);
  EXPECT_GT(hot_report.total_errors(), 0u);
}

TEST(FrameworkTest, EqualPlanCoversSuite) {
  TestSuite suite = TestSuite::BuildSampled(50);
  TestFramework framework(&suite);
  const std::vector<TestPlanEntry> plan = framework.EqualPlan(60.0);
  EXPECT_EQ(plan.size(), suite.size());
  for (const TestPlanEntry& entry : plan) {
    EXPECT_DOUBLE_EQ(entry.duration_seconds, 60.0);
  }
}

TEST(FrameworkTest, RecordCapBoundsStorageNotCounting) {
  TestSuite suite = TestSuite::BuildFull();
  TestFramework framework(&suite);
  FaultyMachine machine =
      SeededMachine({OpKind::kFpMul}, {DataType::kFloat64}, Feature::kFpu, 21);
  TestRunConfig config = FastConfig();
  config.max_records = 10;
  const int index = suite.IndexOf("loop.fp_mul.f64.n480");
  const RunReport report =
      framework.RunPlan(machine, {{static_cast<size_t>(index), 5.0}}, config);
  EXPECT_LE(report.records.size(), 10u);
  EXPECT_GT(report.total_errors(), 10u);
}

TEST(FrameworkTest, WallClockAdvancesWithPlan) {
  TestSuite suite = TestSuite::BuildFull();
  TestFramework framework(&suite);
  FaultyMachine machine(MakeArchSpec("M2"));
  TestRunConfig config = FastConfig();
  const int index = suite.IndexOf("loop.int_add.i32.n96");
  const RunReport report =
      framework.RunPlan(machine, {{static_cast<size_t>(index), 10.0}}, config);
  // Sequential single-core plan: wall time tracks the tested duration (batch quantization
  // can overshoot).
  EXPECT_GE(report.total_wall_seconds, 10.0);
  EXPECT_LT(report.total_wall_seconds, 60.0);
}

}  // namespace
}  // namespace sdc
