// Tests for src/fleet/capacity.h: the fine-grained vs whole-part decommission replay.

#include <gtest/gtest.h>

#include "src/fleet/capacity.h"

namespace sdc {
namespace {

class CapacityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    PopulationConfig config;
    config.processor_count = 300000;
    config.seed = 999;
    fleet_ = new FleetPopulation(FleetPopulation::Generate(config));
    suite_ = new TestSuite(TestSuite::BuildFull());
    pipeline_ = new ScreeningPipeline(suite_);
    stats_ = new ScreeningStats(pipeline_->Run(*fleet_, ScreeningConfig()));
  }
  static void TearDownTestSuite() {
    delete stats_;
    delete pipeline_;
    delete suite_;
    delete fleet_;
    stats_ = nullptr;
    pipeline_ = nullptr;
    suite_ = nullptr;
    fleet_ = nullptr;
  }

  static FleetPopulation* fleet_;
  static TestSuite* suite_;
  static ScreeningPipeline* pipeline_;
  static ScreeningStats* stats_;
};

FleetPopulation* CapacityTest::fleet_ = nullptr;
TestSuite* CapacityTest::suite_ = nullptr;
ScreeningPipeline* CapacityTest::pipeline_ = nullptr;
ScreeningStats* CapacityTest::stats_ = nullptr;

TEST_F(CapacityTest, DefectiveCoreCountUnionsDefects) {
  FleetProcessorView processor;
  processor.arch_index = 1;  // M2: 16 cores
  Defect a;
  a.affected_pcores = {1, 2};
  Defect b;
  b.affected_pcores = {2, 3};
  const std::vector<Defect> two_defects = {a, b};
  processor.defects = two_defects;
  EXPECT_EQ(DefectiveCoreCount(processor), 3);
  const std::vector<Defect> all_cores(1);  // empty pcore list = every core
  processor.defects = all_cores;
  EXPECT_EQ(DefectiveCoreCount(processor), 16);
}

TEST_F(CapacityTest, FineGrainedNeverLosesMoreThanBaseline) {
  const CapacityReport report =
      SimulateCapacityRetention(*fleet_, *stats_, ScreeningConfig());
  EXPECT_LE(report.fine_grained_cores_lost, report.baseline_cores_lost);
  for (const CapacityPoint& point : report.timeline) {
    EXPECT_LE(point.fine_grained_cores_lost, point.baseline_cores_lost);
  }
}

TEST_F(CapacityTest, OnlyProductionDetectionsCost) {
  const CapacityReport report =
      SimulateCapacityRetention(*fleet_, *stats_, ScreeningConfig());
  uint64_t regular = 0;
  for (const ProcessorOutcome& outcome : stats_->detections) {
    regular += outcome.stage == TestStage::kRegular ? 1 : 0;
  }
  EXPECT_EQ(report.production_detections, regular);
}

TEST_F(CapacityTest, TimelineIsMonotoneCumulative) {
  const CapacityReport report =
      SimulateCapacityRetention(*fleet_, *stats_, ScreeningConfig());
  for (size_t i = 1; i < report.timeline.size(); ++i) {
    EXPECT_GE(report.timeline[i].baseline_cores_lost,
              report.timeline[i - 1].baseline_cores_lost);
    EXPECT_GE(report.timeline[i].fine_grained_cores_lost,
              report.timeline[i - 1].fine_grained_cores_lost);
  }
  if (!report.timeline.empty()) {
    EXPECT_EQ(report.timeline.back().baseline_cores_lost, report.baseline_cores_lost);
    EXPECT_EQ(report.timeline.back().fine_grained_cores_lost,
              report.fine_grained_cores_lost);
  }
}

TEST_F(CapacityTest, SingleCoreDefectsDriveTheSavings) {
  const CapacityReport report =
      SimulateCapacityRetention(*fleet_, *stats_, ScreeningConfig());
  if (report.production_detections > 0) {
    // About half of faulty parts have single-core defects (Observation 4), so the
    // fine-grained policy must save a meaningful share of the baseline's losses.
    EXPECT_GT(report.cores_saved(), 0u);
  }
}

}  // namespace
}  // namespace sdc
