// Behavioural tests for the extended kernel families (FFT, LU, stencil, Monte Carlo,
// sorting, searching, RLE, histogram, bit packing, base64, memcmp, message passing):
// each is clean on a healthy machine and detects a seeded defect on its own ops.

#include <gtest/gtest.h>

#include "src/fault/catalog.h"
#include "src/toolchain/cases.h"
#include "src/toolchain/framework.h"

namespace sdc {
namespace {

FaultyMachine SeededMachine(std::vector<OpKind> ops, std::vector<DataType> types,
                            Feature feature, uint64_t seed,
                            double base_log10_rate = -4.0) {
  FaultyProcessorInfo info;
  info.cpu_id = "seeded";
  info.arch = "M2";
  info.age_years = 1.0;
  info.spec = MakeArchSpec("M2");
  Defect defect;
  defect.id = "seeded";
  defect.feature = feature;
  defect.affected_ops = std::move(ops);
  defect.affected_types = std::move(types);
  defect.min_trigger_celsius = 0.0;
  defect.base_log10_rate = base_log10_rate;
  defect.temp_slope = 0.0;
  defect.intensity_ref = 0.0;
  defect.pattern_probability = 0.0;
  info.defects.push_back(std::move(defect));
  return FaultyMachine(info, seed);
}

class KernelsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { suite_ = new TestSuite(TestSuite::BuildFull()); }
  static void TearDownTestSuite() {
    delete suite_;
    suite_ = nullptr;
  }

  static RunReport Run(FaultyMachine& machine, const std::string& id, double seconds,
                       bool multithreaded = false) {
    TestFramework framework(suite_);
    TestRunConfig config;
    config.time_scale = 1e5;
    config.seed = 77;
    config.pcores_under_test = multithreaded ? std::vector<int>{0, 1} : std::vector<int>{0};
    const int index = suite_->IndexOf(id);
    EXPECT_GE(index, 0) << id;
    return framework.RunPlan(machine, {{static_cast<size_t>(index), seconds}}, config);
  }

  static TestSuite* suite_;
};

TestSuite* KernelsTest::suite_ = nullptr;

TEST_F(KernelsTest, SuiteStillExactly633WithUniqueIds) {
  EXPECT_EQ(suite_->size(), kFullSuiteSize);
  EXPECT_GE(suite_->IndexOf("app.fft.f64.n128"), 0);
  EXPECT_GE(suite_->IndexOf("app.lu.f64.n16"), 0);
  EXPECT_GE(suite_->IndexOf("app.stencil.heat.n256.s16"), 0);
  EXPECT_GE(suite_->IndexOf("app.montecarlo.pi.n512"), 0);
  EXPECT_GE(suite_->IndexOf("app.sort.insertion.n48"), 0);
  EXPECT_GE(suite_->IndexOf("app.bsearch.n4096.q128"), 0);
  EXPECT_GE(suite_->IndexOf("app.rle.b1024"), 0);
  EXPECT_GE(suite_->IndexOf("app.histogram.n512"), 0);
  EXPECT_GE(suite_->IndexOf("lib.bitpack.n256"), 0);
  EXPECT_GE(suite_->IndexOf("lib.base64.b192"), 0);
  EXPECT_GE(suite_->IndexOf("lib.memcmp.b1024"), 0);
  EXPECT_GE(suite_->IndexOf("mt.coherence.msgpass.w16.r25"), 0);
}

TEST_F(KernelsTest, AllNewKernelsCleanOnHealthyMachine) {
  for (const char* id :
       {"app.fft.f64.n128", "app.lu.f64.n16", "app.stencil.heat.n64.s4",
        "app.montecarlo.pi.n512", "app.sort.insertion.n48", "app.bsearch.n256.q32",
        "app.rle.b1024", "app.histogram.n512", "lib.bitpack.n256", "lib.base64.b192",
        "lib.memcmp.b1024"}) {
    FaultyMachine machine(MakeArchSpec("M2"));
    const RunReport report = Run(machine, id, 1.0);
    EXPECT_EQ(report.total_errors(), 0u) << id;
  }
  FaultyMachine machine(MakeArchSpec("M2"));
  const RunReport report = Run(machine, "mt.coherence.msgpass.w16.r25", 2.0, true);
  EXPECT_EQ(report.total_errors(), 0u);
}

TEST_F(KernelsTest, FftDetectsFmaDefect) {
  FaultyMachine machine =
      SeededMachine({OpKind::kFpFma}, {DataType::kFloat64}, Feature::kFpu, 3);
  EXPECT_GT(Run(machine, "app.fft.f64.n128", 3.0).total_errors(), 0u);
}

TEST_F(KernelsTest, LuDetectsDivideDefect) {
  FaultyMachine machine =
      SeededMachine({OpKind::kFpDiv}, {DataType::kFloat64}, Feature::kFpu, 5, -3.0);
  EXPECT_GT(Run(machine, "app.lu.f64.n24", 3.0).total_errors(), 0u);
}

TEST_F(KernelsTest, StencilPropagatesCorruption) {
  FaultyMachine machine =
      SeededMachine({OpKind::kFpFma}, {DataType::kFloat64}, Feature::kFpu, 7, -5.0);
  const RunReport report = Run(machine, "app.stencil.heat.n256.s16", 3.0);
  EXPECT_GT(report.total_errors(), 0u);
}

TEST_F(KernelsTest, MonteCarloDetectsMulDefect) {
  FaultyMachine machine =
      SeededMachine({OpKind::kFpMul}, {DataType::kFloat64}, Feature::kFpu, 9);
  EXPECT_GT(Run(machine, "app.montecarlo.pi.n2048", 2.0).total_errors(), 0u);
}

TEST_F(KernelsTest, SortDetectsCompareDefect) {
  FaultyMachine machine =
      SeededMachine({OpKind::kCompare}, {DataType::kInt32}, Feature::kAlu, 11, -3.0);
  EXPECT_GT(Run(machine, "app.sort.insertion.n96", 3.0).total_errors(), 0u);
}

TEST_F(KernelsTest, BinarySearchDetectsCompareDefect) {
  FaultyMachine machine =
      SeededMachine({OpKind::kCompare}, {DataType::kInt32}, Feature::kAlu, 13, -2.0);
  EXPECT_GT(Run(machine, "app.bsearch.n4096.q128", 3.0).total_errors(), 0u);
}

TEST_F(KernelsTest, HistogramDetectsAddDefect) {
  FaultyMachine machine =
      SeededMachine({OpKind::kIntAdd}, {DataType::kInt32}, Feature::kAlu, 15, -4.0);
  EXPECT_GT(Run(machine, "app.histogram.n2048", 2.0).total_errors(), 0u);
}

TEST_F(KernelsTest, RleDetectsByteAddDefect) {
  FaultyMachine machine =
      SeededMachine({OpKind::kIntAdd}, {DataType::kByte}, Feature::kAlu, 17, -4.0);
  EXPECT_GT(Run(machine, "app.rle.b4096", 3.0).total_errors(), 0u);
}

TEST_F(KernelsTest, BitPackDetectsShiftDefect) {
  FaultyMachine machine =
      SeededMachine({OpKind::kIntShift}, {DataType::kBin32}, Feature::kAlu, 19, -4.0);
  EXPECT_GT(Run(machine, "lib.bitpack.n1024", 2.0).total_errors(), 0u);
}

TEST_F(KernelsTest, Base64DetectsLogicDefect) {
  FaultyMachine machine =
      SeededMachine({OpKind::kLogicAnd}, {DataType::kByte}, Feature::kAlu, 21, -4.0);
  EXPECT_GT(Run(machine, "lib.base64.b768", 2.0).total_errors(), 0u);
}

TEST_F(KernelsTest, MemcmpDetectsCompareDefect) {
  FaultyMachine machine =
      SeededMachine({OpKind::kCompare}, {DataType::kInt32}, Feature::kAlu, 23, -3.0);
  EXPECT_GT(Run(machine, "lib.memcmp.b4096", 2.0).total_errors(), 0u);
}

TEST_F(KernelsTest, MessagePassingDetectsCoherenceDefect) {
  FaultyMachine machine = SeededMachine({OpKind::kStore}, {}, Feature::kCache, 25, -5.5);
  const RunReport report = Run(machine, "mt.coherence.msgpass.w16.r75", 5.0, true);
  EXPECT_GT(report.total_errors(), 0u);
  for (const SdcRecord& record : report.records) {
    EXPECT_EQ(record.sdc_type, SdcType::kConsistency);
  }
}


TEST_F(KernelsTest, FuzzCasesCleanOnHealthyDetectOnFaulty) {
  FaultyMachine healthy(MakeArchSpec("M2"));
  EXPECT_EQ(Run(healthy, "fuzz.s3.n160", 2.0).total_errors(), 0u);
  FaultyMachine faulty =
      SeededMachine({OpKind::kFpArctan}, {DataType::kFloat64}, Feature::kFpu, 31, -3.0);
  EXPECT_GT(Run(faulty, "fuzz.s3.n160", 3.0).total_errors(), 0u);
}

TEST_F(KernelsTest, FuzzStreamsDiffer) {
  // Different corpus seeds produce different op sequences: their op histograms differ.
  TestFramework framework(suite_);
  TestRunConfig config;
  config.time_scale = 1e5;
  config.seed = 9;
  config.pcores_under_test = {0};
  FaultyMachine a(MakeArchSpec("M2"));
  FaultyMachine b(MakeArchSpec("M2"));
  const int ia = suite_->IndexOf("fuzz.s1.n160");
  const int ib = suite_->IndexOf("fuzz.s2.n160");
  ASSERT_GE(ia, 0);
  ASSERT_GE(ib, 0);
  const RunReport ra = framework.RunPlan(a, {{(size_t)ia, 1.0}}, config);
  const RunReport rb = framework.RunPlan(b, {{(size_t)ib, 1.0}}, config);
  EXPECT_NE(ra.results[0].op_histogram, rb.results[0].op_histogram);
}

TEST_F(KernelsTest, ChecksumFamiliesDetectSeededDefects) {
  FaultyMachine adler =
      SeededMachine({OpKind::kIntAdd}, {DataType::kUInt32}, Feature::kAlu, 33, -4.0);
  EXPECT_GT(Run(adler, "lib.adler32.b4096", 3.0).total_errors(), 0u);
  FaultyMachine crc64 =
      SeededMachine({OpKind::kCrc32Step}, {DataType::kBin64}, Feature::kAlu, 35, -4.0);
  EXPECT_GT(Run(crc64, "lib.crc64.b4096", 3.0).total_errors(), 0u);
}


TEST_F(KernelsTest, SeqlockDetectsCoherenceDefect) {
  FaultyMachine healthy(MakeArchSpec("M2"));
  EXPECT_EQ(Run(healthy, "mt.coherence.seqlock.w8.r25", 2.0, true).total_errors(), 0u);
  FaultyMachine faulty = SeededMachine({OpKind::kStore}, {}, Feature::kCache, 37, -5.5);
  const RunReport report = Run(faulty, "mt.coherence.seqlock.w32.r75", 5.0, true);
  EXPECT_GT(report.total_errors(), 0u);
  for (const SdcRecord& record : report.records) {
    EXPECT_EQ(record.sdc_type, SdcType::kConsistency);
  }
}

TEST_F(KernelsTest, DeterministicAcrossRuns) {
  auto run = [] {
    FaultyMachine machine =
        SeededMachine({OpKind::kFpFma}, {DataType::kFloat64}, Feature::kFpu, 27, -5.0);
    return Run(machine, "app.fft.f64.n256", 3.0).total_errors();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace sdc
