// Equivalence suite for the streaming shard pipeline (docs/streaming.md): a fused
// generate->screen->aggregate pass over FleetShardStream must be byte-identical -- every
// counter, every detection in order, detection months compared bitwise, metrics snapshot
// included -- to generating a materialized FleetPopulation and running the same
// aggregations over it, at several thread counts. Also pins the memory contract: peak
// streaming scratch is O(lanes * shard), not O(fleet).

#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/farron/longitudinal.h"
#include "src/fleet/capacity.h"
#include "src/fleet/pipeline.h"
#include "src/fleet/population.h"
#include "src/fleet/stats.h"
#include "src/fleet/stream.h"
#include "src/report/exporters.h"
#include "src/telemetry/metrics.h"

namespace sdc {
namespace {

constexpr uint64_t kFleetSize = 200000;
constexpr uint64_t kFleetSeed = 20260805;

// Everything both modes can produce from one generate+screen pass.
struct PassResults {
  ScreeningStats stats;
  CapacityReport capacity;
  TestcaseEffectiveness effectiveness;
  std::vector<WearoutExposure> exposures;
  StreamReport report;  // streaming mode only
};

class StreamEquivalenceTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { suite_ = new TestSuite(TestSuite::BuildFull()); }
  static void TearDownTestSuite() {
    delete suite_;
    suite_ = nullptr;
  }

  static PopulationConfig MakePopulationConfig(uint64_t processors, int threads,
                                               MetricsRegistry* metrics) {
    PopulationConfig config;
    config.processor_count = processors;
    config.seed = kFleetSeed;
    config.threads = threads;
    config.metrics = metrics;
    return config;
  }

  static ScreeningConfig MakeScreeningConfig(int threads, MetricsRegistry* metrics,
                                             bool use_reference) {
    ScreeningConfig config;
    config.threads = threads;
    config.metrics = metrics;
    config.use_reference_model = use_reference;
    return config;
  }

  // The materialized baseline: build the fleet, then run each aggregation against it.
  static PassResults RunMaterialized(uint64_t processors, int threads,
                                     MetricsRegistry* metrics = nullptr,
                                     bool use_reference = false) {
    const PopulationConfig population = MakePopulationConfig(processors, threads, metrics);
    const FleetPopulation fleet = FleetPopulation::Generate(population);
    ScreeningPipeline pipeline(suite_);
    const ScreeningConfig screening = MakeScreeningConfig(threads, metrics, use_reference);
    PassResults results;
    results.stats = pipeline.Run(fleet, screening);
    results.capacity = SimulateCapacityRetention(fleet, results.stats, screening);
    results.effectiveness = ComputeTestcaseEffectiveness(
        *suite_, fleet, screening.stages[static_cast<size_t>(TestStage::kRegular)]);
    // The cadence study's exposure derivation (bench/cadence_tradeoff.cc), via the
    // fleet's random-access DefectsOf.
    for (const ProcessorOutcome& outcome : results.stats.detections) {
      if (outcome.stage != TestStage::kRegular) {
        continue;
      }
      double onset = 0.0;
      for (const Defect& defect : fleet.DefectsOf(outcome.serial)) {
        if (defect.onset_months > 0.0 && defect.onset_months <= outcome.month) {
          onset = defect.onset_months;
        }
      }
      results.exposures.push_back({outcome.serial, onset, outcome.month});
    }
    return results;
  }

  // The fused pass: all four aggregations ride one FleetShardStream drive.
  static PassResults RunStreaming(uint64_t processors, int threads,
                                  MetricsRegistry* metrics = nullptr,
                                  bool use_reference = false) {
    const PopulationConfig population = MakePopulationConfig(processors, threads, metrics);
    ScreeningPipeline pipeline(suite_);
    const ScreeningConfig screening = MakeScreeningConfig(threads, metrics, use_reference);
    FleetShardStream stream(population);
    StreamingScreen screen(&pipeline, screening);
    CapacityAccumulator capacity;
    WearoutExposureObserver exposure;
    screen.AddObserver(&capacity);
    screen.AddObserver(&exposure);
    EffectivenessAccumulator effectiveness(
        suite_, screening.stages[static_cast<size_t>(TestStage::kRegular)]);
    PassResults results;
    results.report = stream.Drive({&screen, &effectiveness});
    results.stats = screen.TakeStats();
    results.capacity = capacity.TakeReport();
    results.effectiveness = effectiveness.TakeResult();
    results.exposures = exposure.exposures();
    return results;
  }

  static void ExpectIdenticalStats(const ScreeningStats& streaming,
                                   const ScreeningStats& materialized) {
    EXPECT_EQ(streaming.tested, materialized.tested);
    EXPECT_EQ(streaming.faulty, materialized.faulty);
    EXPECT_EQ(streaming.detected_by_stage, materialized.detected_by_stage);
    EXPECT_EQ(streaming.tested_by_arch, materialized.tested_by_arch);
    EXPECT_EQ(streaming.detected_by_arch, materialized.detected_by_arch);
    ASSERT_EQ(streaming.detections.size(), materialized.detections.size());
    for (size_t i = 0; i < streaming.detections.size(); ++i) {
      const ProcessorOutcome& s = streaming.detections[i];
      const ProcessorOutcome& m = materialized.detections[i];
      EXPECT_EQ(s.serial, m.serial) << "detection " << i;
      EXPECT_EQ(s.arch_index, m.arch_index) << "detection " << i;
      EXPECT_EQ(s.detected, m.detected) << "detection " << i;
      EXPECT_EQ(s.stage, m.stage) << "detection " << i;
      // Bitwise, not EXPECT_DOUBLE_EQ: the streaming path must reproduce the
      // materialized floating-point rounding exactly, not merely approximately.
      EXPECT_EQ(std::memcmp(&s.month, &m.month, sizeof(double)), 0)
          << "detection " << i << " month " << s.month << " vs " << m.month;
    }
  }

  static void ExpectIdenticalCapacity(const CapacityReport& streaming,
                                      const CapacityReport& materialized) {
    EXPECT_EQ(streaming.fleet_cores, materialized.fleet_cores);
    EXPECT_EQ(streaming.production_detections, materialized.production_detections);
    EXPECT_EQ(streaming.baseline_cores_lost, materialized.baseline_cores_lost);
    EXPECT_EQ(streaming.fine_grained_cores_lost, materialized.fine_grained_cores_lost);
    EXPECT_EQ(streaming.parts_deprecated_fine, materialized.parts_deprecated_fine);
    ASSERT_EQ(streaming.timeline.size(), materialized.timeline.size());
    for (size_t i = 0; i < streaming.timeline.size(); ++i) {
      EXPECT_EQ(std::memcmp(&streaming.timeline[i].month, &materialized.timeline[i].month,
                            sizeof(double)),
                0)
          << "timeline point " << i;
      EXPECT_EQ(streaming.timeline[i].baseline_cores_lost,
                materialized.timeline[i].baseline_cores_lost)
          << "timeline point " << i;
      EXPECT_EQ(streaming.timeline[i].fine_grained_cores_lost,
                materialized.timeline[i].fine_grained_cores_lost)
          << "timeline point " << i;
    }
  }

  static void ExpectIdenticalResults(const PassResults& streaming,
                                     const PassResults& materialized) {
    ExpectIdenticalStats(streaming.stats, materialized.stats);
    ExpectIdenticalCapacity(streaming.capacity, materialized.capacity);
    EXPECT_EQ(streaming.effectiveness.total_testcases,
              materialized.effectiveness.total_testcases);
    EXPECT_EQ(streaming.effectiveness.effective_testcases,
              materialized.effectiveness.effective_testcases);
    EXPECT_EQ(streaming.effectiveness.effective_ids,
              materialized.effectiveness.effective_ids);
    ASSERT_EQ(streaming.exposures.size(), materialized.exposures.size());
    for (size_t i = 0; i < streaming.exposures.size(); ++i) {
      EXPECT_EQ(streaming.exposures[i].serial, materialized.exposures[i].serial);
      EXPECT_EQ(std::memcmp(&streaming.exposures[i].onset_months,
                            &materialized.exposures[i].onset_months, sizeof(double)),
                0)
          << "exposure " << i;
      EXPECT_EQ(std::memcmp(&streaming.exposures[i].detection_month,
                            &materialized.exposures[i].detection_month, sizeof(double)),
                0)
          << "exposure " << i;
    }
  }

  static TestSuite* suite_;
};

TestSuite* StreamEquivalenceTest::suite_ = nullptr;

TEST_F(StreamEquivalenceTest, MatchesMaterializedAtOneThread) {
  ExpectIdenticalResults(RunStreaming(kFleetSize, 1), RunMaterialized(kFleetSize, 1));
}

TEST_F(StreamEquivalenceTest, MatchesMaterializedAtTwoThreads) {
  ExpectIdenticalResults(RunStreaming(kFleetSize, 2), RunMaterialized(kFleetSize, 2));
}

TEST_F(StreamEquivalenceTest, MatchesMaterializedAtEightThreads) {
  ExpectIdenticalResults(RunStreaming(kFleetSize, 8), RunMaterialized(kFleetSize, 8));
}

TEST_F(StreamEquivalenceTest, StreamingIsThreadCountInvariant) {
  const PassResults one = RunStreaming(kFleetSize, 1);
  ExpectIdenticalResults(RunStreaming(kFleetSize, 2), one);
  ExpectIdenticalResults(RunStreaming(kFleetSize, 8), one);
  // Cross-mode, cross-thread-count: streaming at 8 equals materialized at 1.
  ExpectIdenticalResults(one, RunMaterialized(kFleetSize, 8));
}

TEST_F(StreamEquivalenceTest, NotVacuouslyEqual) {
  // Guard against the equivalence holding because nothing happened at all.
  const PassResults streaming = RunStreaming(kFleetSize, 2);
  EXPECT_EQ(streaming.stats.tested, kFleetSize);
  EXPECT_GT(streaming.stats.faulty, 0u);
  EXPECT_GT(streaming.stats.total_detected(), 0u);
  EXPECT_GT(streaming.capacity.production_detections, 0u);
  EXPECT_GT(streaming.capacity.fleet_cores, 0u);
  EXPECT_GT(streaming.effectiveness.effective_testcases, 0u);
  EXPECT_FALSE(streaming.exposures.empty());
}

TEST_F(StreamEquivalenceTest, MetricsSnapshotsIdenticalAcrossModes) {
  // The observable metric stream (sans wall-clock timers) is part of the contract:
  // streaming merges the same per-shard deltas in the same shard order.
  const auto snapshot_json = [](bool streaming, int threads) {
    MetricsRegistry registry;
    if (streaming) {
      (void)RunStreaming(kFleetSize, threads, &registry);
    } else {
      (void)RunMaterialized(kFleetSize, threads, &registry);
    }
    std::ostringstream out;
    WriteMetricsJson(out, registry.Snapshot(), /*include_timers=*/false);
    return out.str();
  };
  const std::string materialized = snapshot_json(false, 1);
  EXPECT_EQ(materialized, snapshot_json(true, 1));
  EXPECT_EQ(materialized, snapshot_json(true, 2));
  EXPECT_EQ(materialized, snapshot_json(true, 8));
  EXPECT_NE(materialized.find("fleet.generate.processors"), std::string::npos);
  EXPECT_NE(materialized.find("screening.tested"), std::string::npos);
}

TEST_F(StreamEquivalenceTest, ReferenceModelStreamsIdenticallyToo) {
  // The retained pre-memoization oracle must stream through the same shard views without
  // perturbing a single draw. Smaller fleet: the reference model is deliberately slow.
  constexpr uint64_t kSmall = 50000;
  ExpectIdenticalResults(RunStreaming(kSmall, 2, nullptr, /*use_reference=*/true),
                         RunMaterialized(kSmall, 2, nullptr, /*use_reference=*/true));
}

TEST_F(StreamEquivalenceTest, MaterializerReproducesGenerate) {
  // A FleetMaterializer riding the same drive as other consumers rebuilds exactly the
  // fleet Generate produces (Generate itself is this consumer; this pins the multi-
  // consumer path).
  PopulationConfig config = MakePopulationConfig(kFleetSize, 4, nullptr);
  const FleetPopulation expected = FleetPopulation::Generate(config);
  FleetPopulation rebuilt;
  FleetMaterializer materializer(&rebuilt);
  ScreeningPipeline pipeline(suite_);
  StreamingScreen screen(&pipeline, MakeScreeningConfig(4, nullptr, false));
  FleetShardStream stream(config);
  stream.Drive({&screen, &materializer});
  EXPECT_EQ(rebuilt.arch_bytes(), expected.arch_bytes());
  EXPECT_EQ(rebuilt.flag_bytes(), expected.flag_bytes());
  EXPECT_EQ(rebuilt.faulty_serials(), expected.faulty_serials());
  ASSERT_EQ(rebuilt.faulty_count(), expected.faulty_count());
  for (size_t ordinal = 0; ordinal < rebuilt.faulty_count(); ++ordinal) {
    ASSERT_EQ(rebuilt.FaultyDefects(ordinal).size(), expected.FaultyDefects(ordinal).size());
    for (size_t d = 0; d < rebuilt.FaultyDefects(ordinal).size(); ++d) {
      EXPECT_EQ(rebuilt.FaultyDefects(ordinal)[d].id, expected.FaultyDefects(ordinal)[d].id);
    }
  }
  for (int arch = 0; arch < kArchCount; ++arch) {
    EXPECT_EQ(rebuilt.CountByArch(arch), expected.CountByArch(arch));
  }
}

// ----- batched streaming (StreamingScreen over a ScenarioBatch) ---------------------
//
// One fused generate->screen pass evaluating K scenarios must hand every scenario the
// same bits as (a) a materialized RunBatch and (b) K independent single-scenario runs,
// at any thread count -- including per-scenario observers, which must see exactly their
// scenario's shard outcomes.

class StreamBatchTest : public StreamEquivalenceTest {
 protected:
  static ScenarioBatch MakeBatch(int k_count, int threads) {
    static constexpr double kPeriods[] = {3.0, 1.0, 2.0, 6.0};
    ScenarioBatch batch;
    batch.threads = threads;
    for (int k = 0; k < k_count; ++k) {
      ScreeningConfig config;
      config.seed = 77 + static_cast<uint64_t>(k);
      config.regular_period_months = kPeriods[k % 4];
      batch.scenarios.push_back(config);
    }
    return batch;
  }

  // Streaming batched pass with one WearoutExposureObserver per scenario.
  static std::vector<PassResults> RunStreamingBatch(int k_count, int threads) {
    const PopulationConfig population = MakePopulationConfig(kFleetSize, threads, nullptr);
    ScreeningPipeline pipeline(suite_);
    const ScenarioBatch batch = MakeBatch(k_count, threads);
    FleetShardStream stream(population);
    StreamingScreen screen(&pipeline, batch);
    std::vector<WearoutExposureObserver> exposure(batch.scenarios.size());
    for (size_t k = 0; k < batch.scenarios.size(); ++k) {
      screen.AddObserver(&exposure[k], k);
    }
    stream.Drive({&screen});
    std::vector<ScreeningStats> stats = screen.TakeBatchStats();
    std::vector<PassResults> results(stats.size());
    for (size_t k = 0; k < stats.size(); ++k) {
      results[k].stats = std::move(stats[k]);
      results[k].exposures = exposure[k].exposures();
    }
    return results;
  }

  static void ExpectIdenticalExposures(const std::vector<WearoutExposure>& a,
                                       const std::vector<WearoutExposure>& b) {
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].serial, b[i].serial) << "exposure " << i;
      EXPECT_EQ(std::memcmp(&a[i].onset_months, &b[i].onset_months, sizeof(double)), 0)
          << "exposure " << i;
      EXPECT_EQ(
          std::memcmp(&a[i].detection_month, &b[i].detection_month, sizeof(double)), 0)
          << "exposure " << i;
    }
  }

  static void ExpectBatchEquivalence(int k_count, int threads) {
    const std::vector<PassResults> streamed = RunStreamingBatch(k_count, threads);
    ASSERT_EQ(streamed.size(), static_cast<size_t>(k_count));

    // (a) materialized batched pass over the same fleet.
    const PopulationConfig population = MakePopulationConfig(kFleetSize, threads, nullptr);
    const FleetPopulation fleet = FleetPopulation::Generate(population);
    ScreeningPipeline pipeline(suite_);
    const ScenarioBatch batch = MakeBatch(k_count, threads);
    const std::vector<ScreeningStats> materialized = pipeline.RunBatch(fleet, batch);
    ASSERT_EQ(materialized.size(), static_cast<size_t>(k_count));

    for (int k = 0; k < k_count; ++k) {
      SCOPED_TRACE("scenario " + std::to_string(k));
      ExpectIdenticalStats(streamed[static_cast<size_t>(k)].stats,
                           materialized[static_cast<size_t>(k)]);

      // (b) an independent single-scenario streaming pass, observer included.
      ScreeningConfig independent = batch.scenarios[static_cast<size_t>(k)];
      independent.threads = threads;
      FleetShardStream stream(population);
      StreamingScreen screen(&pipeline, independent);
      WearoutExposureObserver exposure;
      screen.AddObserver(&exposure);
      stream.Drive({&screen});
      ExpectIdenticalStats(streamed[static_cast<size_t>(k)].stats, screen.TakeStats());
      ExpectIdenticalExposures(streamed[static_cast<size_t>(k)].exposures,
                               exposure.exposures());
    }
  }
};

TEST_F(StreamBatchTest, BatchedStreamMatchesBatchedRunAndIndependentAtOneThread) {
  ExpectBatchEquivalence(4, 1);
}

TEST_F(StreamBatchTest, BatchedStreamMatchesBatchedRunAndIndependentAtTwoThreads) {
  ExpectBatchEquivalence(4, 2);
}

TEST_F(StreamBatchTest, BatchedStreamMatchesBatchedRunAndIndependentAtEightThreads) {
  ExpectBatchEquivalence(4, 8);
}

TEST_F(StreamBatchTest, BatchedStreamIsThreadCountInvariant) {
  const std::vector<PassResults> one = RunStreamingBatch(4, 1);
  const std::vector<PassResults> eight = RunStreamingBatch(4, 8);
  ASSERT_EQ(one.size(), eight.size());
  for (size_t k = 0; k < one.size(); ++k) {
    SCOPED_TRACE("scenario " + std::to_string(k));
    ExpectIdenticalStats(eight[k].stats, one[k].stats);
    ExpectIdenticalExposures(eight[k].exposures, one[k].exposures);
  }
}

TEST_F(StreamBatchTest, BatchedScenariosNotVacuouslyEqual) {
  const std::vector<PassResults> streamed = RunStreamingBatch(4, 2);
  bool any_difference = false;
  for (size_t k = 0; k < streamed.size(); ++k) {
    EXPECT_EQ(streamed[k].stats.tested, kFleetSize);
    EXPECT_GT(streamed[k].stats.total_detected(), 0u);
    if (k > 0 &&
        (streamed[k].stats.detections.size() != streamed[0].stats.detections.size() ||
         streamed[k].exposures.size() != streamed[0].exposures.size())) {
      any_difference = true;
    }
  }
  // Different seeds and cadences: at least the regular-stage timelines must differ.
  for (size_t k = 1; k < streamed.size() && !any_difference; ++k) {
    for (size_t i = 0; i < streamed[k].stats.detections.size(); ++i) {
      if (streamed[k].stats.detections[i].serial !=
          streamed[0].stats.detections[i].serial) {
        any_difference = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_difference) << "all scenarios produced identical outcomes";
}

TEST(StreamMemoryTest, TenMillionProcessorsStayWithinShardBudget) {
  // The point of the tentpole: a 10M-processor generate+screen pass must peak at
  // O(lanes * shard) scratch, orders of magnitude below the ~20 MB of fleet columns a
  // materialized run would hold (let alone its defect arena).
  constexpr uint64_t kBigFleet = 10'000'000;
  TestSuite suite = TestSuite::BuildFull();
  PopulationConfig population;
  population.processor_count = kBigFleet;
  population.threads = 2;
  ScreeningPipeline pipeline(&suite);
  ScreeningConfig screening;
  screening.threads = 2;
  FleetShardStream stream(population);
  StreamingScreen screen(&pipeline, screening);
  const StreamReport report = stream.Drive({&screen});
  const ScreeningStats stats = screen.TakeStats();
  EXPECT_EQ(stats.tested, kBigFleet);
  EXPECT_GT(stats.faulty, 0u);
  EXPECT_GT(stats.total_detected(), 0u);
  EXPECT_EQ(report.shards, (kBigFleet + kFleetShardGrain - 1) / kFleetShardGrain);
  // Budget: half a MiB of scratch per lane comfortably covers the two 8 KiB byte columns
  // plus the shard's handful of faulty parts and their defects -- and is ~40x below what
  // materializing this fleet's columns alone would take.
  const uint64_t budget = static_cast<uint64_t>(report.lanes) * 512 * 1024;
  EXPECT_GT(report.peak_scratch_bytes, 0u);
  EXPECT_LT(report.peak_scratch_bytes, budget)
      << "streaming scratch grew beyond the per-lane shard budget";
}

}  // namespace
}  // namespace sdc
