// Tests for src/telemetry and its wiring into Farron and the protection loop.

#include <sstream>

#include <gtest/gtest.h>

#include "src/farron/farron.h"
#include "src/farron/protection.h"
#include "src/telemetry/event_log.h"

namespace sdc {
namespace {

TEST(EventLogTest, RecordsAndCounts) {
  EventLog log;
  log.Record(EventKind::kSdcDetected, 1.0, "case-a", 3, 12.0);
  log.Record(EventKind::kSdcDetected, 2.0, "case-b");
  log.Record(EventKind::kCoreMasked, 3.0, "CPU", 5);
  EXPECT_EQ(log.total_recorded(), 3u);
  EXPECT_EQ(log.CountOf(EventKind::kSdcDetected), 2u);
  EXPECT_EQ(log.CountOf(EventKind::kCoreMasked), 1u);
  EXPECT_EQ(log.CountOf(EventKind::kBackoffEngaged), 0u);
  const auto detected = log.EventsOf(EventKind::kSdcDetected);
  ASSERT_EQ(detected.size(), 2u);
  EXPECT_EQ(detected[0].subject, "case-a");
  EXPECT_EQ(detected[0].pcore, 3);
  EXPECT_DOUBLE_EQ(detected[0].value, 12.0);
}

TEST(EventLogTest, BoundedRetentionKeepsTotals) {
  EventLog log(4);
  for (int i = 0; i < 10; ++i) {
    log.Record(EventKind::kBackoffEngaged, i, "w");
  }
  EXPECT_EQ(log.events().size(), 4u);
  EXPECT_EQ(log.total_recorded(), 10u);
  EXPECT_EQ(log.CountOf(EventKind::kBackoffEngaged), 10u);
  EXPECT_DOUBLE_EQ(log.events().front().time_seconds, 6.0);  // oldest retained
}

TEST(EventLogTest, DumpRendersEveryRetainedEvent) {
  EventLog log;
  log.Record(EventKind::kBoundaryRaised, 5.5, "CPU", -1, 60.0);
  std::ostringstream out;
  log.Dump(out);
  EXPECT_NE(out.str().find("boundary-raised"), std::string::npos);
  EXPECT_NE(out.str().find("CPU"), std::string::npos);
}

TEST(EventLogTest, ClearResetsEverything) {
  EventLog log;
  log.Record(EventKind::kRoundStarted, 0.0, "x");
  log.Clear();
  EXPECT_EQ(log.total_recorded(), 0u);
  EXPECT_TRUE(log.events().empty());
}

TEST(EventLogTest, EveryKindHasAName) {
  for (int kind = 0; kind <= static_cast<int>(EventKind::kBoundaryRaised); ++kind) {
    EXPECT_NE(EventKindName(static_cast<EventKind>(kind)), "?");
  }
}

class FarronTelemetryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { suite_ = new TestSuite(TestSuite::BuildFull()); }
  static void TearDownTestSuite() {
    delete suite_;
    suite_ = nullptr;
  }
  static TestSuite* suite_;
};

TestSuite* FarronTelemetryTest::suite_ = nullptr;

TEST_F(FarronTelemetryTest, RegularRoundEmitsLifecycleEvents) {
  FaultyMachine machine(FindInCatalog("SIMD1"), 61);
  FarronConfig config;
  Farron farron(suite_, &machine, config);
  EventLog log;
  farron.SetEventLog(&log);
  std::vector<std::string> history;
  for (size_t index : suite_->IndicesTargeting(Feature::kVecUnit)) {
    history.push_back(suite_->info(index).id);
  }
  farron.SetActiveFromHistory(history);
  farron.RunRegularRound({});
  EXPECT_EQ(log.CountOf(EventKind::kRoundStarted), 1u);
  EXPECT_EQ(log.CountOf(EventKind::kRoundCompleted), 1u);
  EXPECT_GT(log.CountOf(EventKind::kSdcDetected), 0u);
  EXPECT_EQ(log.CountOf(EventKind::kCoreMasked), 1u);  // SIMD1's single bad core
  const auto masked = log.EventsOf(EventKind::kCoreMasked);
  ASSERT_EQ(masked.size(), 1u);
  EXPECT_EQ(masked[0].pcore, 5);
}

TEST_F(FarronTelemetryTest, ControlStepEmitsCoolingEvents) {
  FaultyMachine machine(MakeArchSpec("M2"));
  FarronConfig config;
  config.enable_cooling_control = true;
  config.enable_adaptive_boundary = false;
  Farron farron(suite_, &machine, config);
  EventLog log;
  farron.SetEventLog(&log);
  for (int i = 0; i < 6; ++i) {
    farron.ControlStep(62.0);
  }
  EXPECT_EQ(log.CountOf(EventKind::kCoolingBoosted), 4u);
}

TEST_F(FarronTelemetryTest, ProtectionLoopEmitsBackoffTransitions) {
  FaultyMachine machine(MakeArchSpec("M2"));
  FarronConfig config;
  config.enable_adaptive_boundary = false;
  Farron farron(suite_, &machine, config);
  EventLog log;
  farron.SetEventLog(&log);
  WorkloadSpec spec;
  spec.kernel_case_index = static_cast<size_t>(suite_->IndexOf("lib.crc32.scalar.b1024"));
  spec.base_utilization = 0.45;
  spec.burst_probability = 0.02;
  spec.burst_seconds = 120.0;
  const ProtectionReport report =
      SimulateProtectedWorkload(farron, machine, *suite_, spec, 1.0, true);
  EXPECT_EQ(log.CountOf(EventKind::kBackoffEngaged), report.backoff_engagements);
  // Every engagement eventually releases (or the run ends throttled; allow off-by-one).
  EXPECT_GE(log.CountOf(EventKind::kBackoffEngaged),
            log.CountOf(EventKind::kBackoffReleased));
  EXPECT_LE(log.CountOf(EventKind::kBackoffEngaged),
            log.CountOf(EventKind::kBackoffReleased) + 1);
}

TEST_F(FarronTelemetryTest, NoLogMeansNoCrash) {
  FaultyMachine machine(MakeArchSpec("M5"));
  FarronConfig config;
  Farron farron(suite_, &machine, config);
  EXPECT_EQ(farron.event_log(), nullptr);
  farron.ControlStep(62.0);  // emits nothing, crashes nothing
}

}  // namespace
}  // namespace sdc
