// Tests for src/telemetry and its wiring into Farron and the protection loop.

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/parallel.h"
#include "src/farron/farron.h"
#include "src/farron/protection.h"
#include "src/telemetry/event_log.h"
#include "src/telemetry/metrics.h"

namespace sdc {
namespace {

TEST(MetricsDeltaTest, AccumulatesAllKinds) {
  MetricsDelta delta;
  delta.Add("c");
  delta.Add("c", 4);
  delta.Set("g", 1.5);
  delta.Set("g", 2.5);
  delta.Observe("h", 5.0, 0.0, 10.0, 2);
  delta.Observe("h", 9.0, 0.0, 10.0, 2);
  EXPECT_EQ(delta.counters().at("c"), 5u);
  EXPECT_DOUBLE_EQ(delta.gauges().at("g"), 2.5);  // last write wins
  const Histogram& histogram = delta.histograms().at("h");
  EXPECT_EQ(histogram.total(), 2u);
  EXPECT_EQ(histogram.count(1), 2u);
  EXPECT_FALSE(delta.empty());
}

TEST(MetricsDeltaTest, MergeFromAppliesOtherAfterOwn) {
  MetricsDelta first;
  first.Add("c", 2);
  first.Set("g", 1.0);
  first.Observe("h", 1.0, 0.0, 4.0, 4);
  MetricsDelta second;
  second.Add("c", 3);
  second.Set("g", 7.0);
  second.Observe("h", 3.0, 0.0, 4.0, 4);
  first.MergeFrom(second);
  EXPECT_EQ(first.counters().at("c"), 5u);
  EXPECT_DOUBLE_EQ(first.gauges().at("g"), 7.0);  // other's gauge applied after
  EXPECT_EQ(first.histograms().at("h").total(), 2u);
}

TEST(MetricsRegistryTest, SnapshotAndClear) {
  MetricsRegistry registry;
  registry.Add("c", 2);
  registry.Set("g", 3.0);
  registry.Observe("h", 0.5, 0.0, 1.0, 4);
  registry.RecordTimerSeconds("t", 0.25);
  registry.RecordTimerSeconds("t", 0.75);
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterOr("c"), 2u);
  EXPECT_EQ(snapshot.CounterOr("absent", 9u), 9u);
  EXPECT_DOUBLE_EQ(snapshot.gauges.at("g"), 3.0);
  EXPECT_EQ(snapshot.histograms.at("h").total(), 1u);
  const TimerStat& timer = snapshot.timers.at("t");
  EXPECT_EQ(timer.count, 2u);
  EXPECT_DOUBLE_EQ(timer.total_seconds, 1.0);
  EXPECT_DOUBLE_EQ(timer.min_seconds, 0.25);
  EXPECT_DOUBLE_EQ(timer.max_seconds, 0.75);
  registry.Clear();
  const MetricsSnapshot cleared = registry.Snapshot();
  EXPECT_TRUE(cleared.counters.empty());
  EXPECT_TRUE(cleared.timers.empty());
}

TEST(MetricsRegistryTest, MergeDeltaInShardOrderIsDeterministic) {
  // Two shards built in shard order must produce the same registry contents no matter how
  // the shard bodies interleaved, because each shard's delta is private until the merge.
  auto run = [] {
    MetricsDelta shard0;
    shard0.Add("n", 1);
    shard0.Set("last", 0.0);
    MetricsDelta shard1;
    shard1.Add("n", 2);
    shard1.Set("last", 1.0);
    MetricsRegistry registry;
    registry.MergeDelta(shard0);
    registry.MergeDelta(shard1);
    return registry.Snapshot();
  };
  const MetricsSnapshot a = run();
  const MetricsSnapshot b = run();
  EXPECT_EQ(a.counters.at("n"), 3u);
  EXPECT_EQ(a.counters, b.counters);
  EXPECT_EQ(a.gauges, b.gauges);
  EXPECT_DOUBLE_EQ(a.gauges.at("last"), 1.0);  // shard 1 merged last
}

TEST(MetricsRegistryTest, ScopedTimerRecordsAndToleratesNull) {
  MetricsRegistry registry;
  {
    MetricsRegistry::ScopedTimer timer(&registry, "span");
  }
  {
    MetricsRegistry::ScopedTimer null_timer(nullptr, "span");  // must not crash
  }
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.timers.at("span").count, 1u);
}

TEST(MetricsRegistryTest, DumpTextRendersEverySection) {
  MetricsRegistry registry;
  registry.Add("my.counter", 7);
  registry.Set("my.gauge", 2.0);
  registry.Observe("my.hist", 1.0, 0.0, 2.0, 2);
  registry.RecordTimerSeconds("my.timer", 0.5);
  std::ostringstream out;
  registry.Snapshot().DumpText(out);
  EXPECT_NE(out.str().find("counter my.counter = 7"), std::string::npos);
  EXPECT_NE(out.str().find("my.gauge"), std::string::npos);
  EXPECT_NE(out.str().find("my.hist"), std::string::npos);
  EXPECT_NE(out.str().find("my.timer"), std::string::npos);
  EXPECT_NE(out.str().find("nondeterministic"), std::string::npos);
}

TEST(MetricsRegistryTest, ConcurrentUpdatesAreSerialized) {
  // Hammer one registry from the worker pool; run under SDC_TSAN=ON this doubles as the
  // data-race check for the registry's single-mutex design.
  MetricsRegistry registry;
  ThreadPool pool(8);
  constexpr uint64_t kItems = 4096;
  pool.ParallelFor(0, kItems, 64, [&](uint64_t, uint64_t begin, uint64_t end) {
    for (uint64_t index = begin; index < end; ++index) {
      registry.Add("n");
      registry.RecordTimerSeconds("t", 1e-9 * static_cast<double>(index + 1));
    }
  });
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterOr("n"), kItems);
  EXPECT_EQ(snapshot.timers.at("t").count, kItems);
}

// Regression pin for TimerStat's min handling: the first sample must become the min
// even though min_seconds starts at 0, both through Record and through MergeFrom into a
// default-constructed stat (the path MetricsSnapshot::MergeFrom takes for a timer name
// the destination has never seen).
TEST(TimerStatTest, FirstRecordSetsMinNotZero) {
  TimerStat stat;
  stat.Record(5.0);
  EXPECT_EQ(stat.count, 1u);
  EXPECT_DOUBLE_EQ(stat.min_seconds, 5.0);
  EXPECT_DOUBLE_EQ(stat.max_seconds, 5.0);
  stat.Record(2.0);
  stat.Record(9.0);
  EXPECT_EQ(stat.count, 3u);
  EXPECT_DOUBLE_EQ(stat.min_seconds, 2.0);
  EXPECT_DOUBLE_EQ(stat.max_seconds, 9.0);
  EXPECT_DOUBLE_EQ(stat.total_seconds, 16.0);
}

TEST(TimerStatTest, MergeIntoEmptyAdoptsOtherMin) {
  TimerStat other;
  other.Record(3.0);
  other.Record(7.0);
  TimerStat empty;
  empty.MergeFrom(other);
  EXPECT_EQ(empty.count, 2u);
  EXPECT_DOUBLE_EQ(empty.min_seconds, 3.0);  // not min(0, 3)
  EXPECT_DOUBLE_EQ(empty.max_seconds, 7.0);
  // Merging an empty stat in is a no-op, including on the min.
  TimerStat untouched = empty;
  empty.MergeFrom(TimerStat{});
  EXPECT_EQ(empty.count, untouched.count);
  EXPECT_DOUBLE_EQ(empty.min_seconds, untouched.min_seconds);
}

TEST(TimerStatTest, MergeKeepsTrueExtremes) {
  TimerStat a;
  a.Record(4.0);
  TimerStat b;
  b.Record(1.0);
  b.Record(6.0);
  a.MergeFrom(b);
  EXPECT_EQ(a.count, 3u);
  EXPECT_DOUBLE_EQ(a.min_seconds, 1.0);
  EXPECT_DOUBLE_EQ(a.max_seconds, 6.0);
  EXPECT_DOUBLE_EQ(a.total_seconds, 11.0);
}

// MetricsSnapshot::MergeFrom is how the sdcd daemon folds per-campaign registries into
// one exposition document; every section must combine by its own rule.
TEST(MetricsSnapshotTest, MergeFromCombinesEverySection) {
  MetricsRegistry first;
  first.Add("shared", 2);
  first.Add("only_first");
  first.Set("g", 1.0);
  first.Observe("h", 0.5, 0.0, 1.0, 4);
  first.RecordTimerSeconds("t", 4.0);

  MetricsRegistry second;
  second.Add("shared", 3);
  second.Add("only_second", 7);
  second.Set("g", 9.0);
  second.Observe("h", 0.9, 0.0, 1.0, 4);
  second.RecordTimerSeconds("t", 1.0);
  second.RecordTimerSeconds("t2", 2.0);

  MetricsSnapshot merged = first.Snapshot();
  merged.MergeFrom(second.Snapshot());
  EXPECT_EQ(merged.CounterOr("shared"), 5u);
  EXPECT_EQ(merged.CounterOr("only_first"), 1u);
  EXPECT_EQ(merged.CounterOr("only_second"), 7u);
  EXPECT_DOUBLE_EQ(merged.gauges.at("g"), 9.0);  // last-write-wins
  EXPECT_EQ(merged.histograms.at("h").total(), 2u);
  const TimerStat& timer = merged.timers.at("t");
  EXPECT_EQ(timer.count, 2u);
  EXPECT_DOUBLE_EQ(timer.min_seconds, 1.0);
  EXPECT_DOUBLE_EQ(timer.max_seconds, 4.0);
  // t2 arrives via the default-construct-then-merge path; min must be 2, not 0.
  EXPECT_EQ(merged.timers.at("t2").count, 1u);
  EXPECT_DOUBLE_EQ(merged.timers.at("t2").min_seconds, 2.0);
}

TEST(EventLogTest, BridgesRecordsIntoMetrics) {
  MetricsRegistry registry;
  EventLog log;
  log.AttachMetrics(&registry);
  log.Record(EventKind::kSdcDetected, 1.0, "case-a");
  log.Record(EventKind::kSdcDetected, 2.0, "case-b");
  log.Record(EventKind::kBackoffEngaged, 3.0, "CPU");
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterOr("events.recorded"), 3u);
  EXPECT_EQ(snapshot.CounterOr("events." + EventKindName(EventKind::kSdcDetected)), 2u);
  EXPECT_EQ(snapshot.CounterOr("events." + EventKindName(EventKind::kBackoffEngaged)), 1u);
  log.AttachMetrics(nullptr);
  log.Record(EventKind::kSdcDetected, 4.0, "case-c");
  EXPECT_EQ(registry.Snapshot().CounterOr("events.recorded"), 3u);  // detached
}

TEST(EventLogTest, ConcurrentRecordKeepsTotals) {
  // The TSAN-covered regression for the unsynchronized-Record bug: many workers logging
  // at once (as under parallel_plan_entries) must neither race nor lose counts.
  MetricsRegistry registry;
  EventLog log(64);
  log.AttachMetrics(&registry);
  ThreadPool pool(8);
  constexpr uint64_t kEvents = 2048;
  pool.ParallelFor(0, kEvents, 32, [&](uint64_t, uint64_t begin, uint64_t end) {
    for (uint64_t index = begin; index < end; ++index) {
      log.Record(EventKind::kBackoffEngaged, static_cast<double>(index), "worker");
    }
  });
  EXPECT_EQ(log.total_recorded(), kEvents);
  EXPECT_EQ(log.CountOf(EventKind::kBackoffEngaged), kEvents);
  EXPECT_EQ(log.RetainedEvents().size(), 64u);  // bounded window intact
  EXPECT_EQ(registry.Snapshot().CounterOr("events.recorded"), kEvents);
}

TEST(EventLogTest, RecordsAndCounts) {
  EventLog log;
  log.Record(EventKind::kSdcDetected, 1.0, "case-a", 3, 12.0);
  log.Record(EventKind::kSdcDetected, 2.0, "case-b");
  log.Record(EventKind::kCoreMasked, 3.0, "CPU", 5);
  EXPECT_EQ(log.total_recorded(), 3u);
  EXPECT_EQ(log.CountOf(EventKind::kSdcDetected), 2u);
  EXPECT_EQ(log.CountOf(EventKind::kCoreMasked), 1u);
  EXPECT_EQ(log.CountOf(EventKind::kBackoffEngaged), 0u);
  const auto detected = log.EventsOf(EventKind::kSdcDetected);
  ASSERT_EQ(detected.size(), 2u);
  EXPECT_EQ(detected[0].subject, "case-a");
  EXPECT_EQ(detected[0].pcore, 3);
  EXPECT_DOUBLE_EQ(detected[0].value, 12.0);
}

TEST(EventLogTest, BoundedRetentionKeepsTotals) {
  EventLog log(4);
  for (int i = 0; i < 10; ++i) {
    log.Record(EventKind::kBackoffEngaged, i, "w");
  }
  EXPECT_EQ(log.RetainedEvents().size(), 4u);
  EXPECT_EQ(log.total_recorded(), 10u);
  EXPECT_EQ(log.CountOf(EventKind::kBackoffEngaged), 10u);
  EXPECT_DOUBLE_EQ(log.RetainedEvents().front().time_seconds, 6.0);  // oldest retained
  // Evictions are counted, not silent: retained + dropped always accounts for every
  // record, and the counter is visible through the metrics bridge below.
  EXPECT_EQ(log.dropped_events(), 6u);
  EXPECT_EQ(log.total_recorded(), log.RetainedEvents().size() + log.dropped_events());
}

TEST(EventLogTest, DroppedEventsBridgeIntoMetricsAndReset) {
  MetricsRegistry registry;
  EventLog log(2);
  log.AttachMetrics(&registry);
  for (int i = 0; i < 5; ++i) {
    log.Record(EventKind::kSdcDetected, i, "case");
  }
  EXPECT_EQ(log.dropped_events(), 3u);
  EXPECT_EQ(registry.Snapshot().CounterOr("events.dropped"), 3u);
  EXPECT_EQ(registry.Snapshot().CounterOr("events.recorded"), 5u);
  log.Clear();
  EXPECT_EQ(log.dropped_events(), 0u);
  EXPECT_EQ(log.total_recorded(), 0u);
}

TEST(EventLogTest, DumpRendersEveryRetainedEvent) {
  EventLog log;
  log.Record(EventKind::kBoundaryRaised, 5.5, "CPU", -1, 60.0);
  std::ostringstream out;
  log.Dump(out);
  EXPECT_NE(out.str().find("boundary-raised"), std::string::npos);
  EXPECT_NE(out.str().find("CPU"), std::string::npos);
}

TEST(EventLogTest, ClearResetsEverything) {
  EventLog log;
  log.Record(EventKind::kRoundStarted, 0.0, "x");
  log.Clear();
  EXPECT_EQ(log.total_recorded(), 0u);
  EXPECT_TRUE(log.RetainedEvents().empty());
}

TEST(EventLogTest, EveryKindHasAName) {
  for (int kind = 0; kind <= static_cast<int>(EventKind::kBoundaryRaised); ++kind) {
    EXPECT_NE(EventKindName(static_cast<EventKind>(kind)), "?");
  }
}

class FarronTelemetryTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { suite_ = new TestSuite(TestSuite::BuildFull()); }
  static void TearDownTestSuite() {
    delete suite_;
    suite_ = nullptr;
  }
  static TestSuite* suite_;
};

TestSuite* FarronTelemetryTest::suite_ = nullptr;

TEST_F(FarronTelemetryTest, RegularRoundEmitsLifecycleEvents) {
  FaultyMachine machine(FindInCatalog("SIMD1"), 61);
  FarronConfig config;
  Farron farron(suite_, &machine, config);
  EventLog log;
  farron.SetEventLog(&log);
  std::vector<std::string> history;
  for (size_t index : suite_->IndicesTargeting(Feature::kVecUnit)) {
    history.push_back(suite_->info(index).id);
  }
  farron.SetActiveFromHistory(history);
  farron.RunRegularRound({});
  EXPECT_EQ(log.CountOf(EventKind::kRoundStarted), 1u);
  EXPECT_EQ(log.CountOf(EventKind::kRoundCompleted), 1u);
  EXPECT_GT(log.CountOf(EventKind::kSdcDetected), 0u);
  EXPECT_EQ(log.CountOf(EventKind::kCoreMasked), 1u);  // SIMD1's single bad core
  const auto masked = log.EventsOf(EventKind::kCoreMasked);
  ASSERT_EQ(masked.size(), 1u);
  EXPECT_EQ(masked[0].pcore, 5);
}

TEST_F(FarronTelemetryTest, ControlStepEmitsCoolingEvents) {
  FaultyMachine machine(MakeArchSpec("M2"));
  FarronConfig config;
  config.enable_cooling_control = true;
  config.enable_adaptive_boundary = false;
  Farron farron(suite_, &machine, config);
  EventLog log;
  farron.SetEventLog(&log);
  for (int i = 0; i < 6; ++i) {
    farron.ControlStep(62.0);
  }
  EXPECT_EQ(log.CountOf(EventKind::kCoolingBoosted), 4u);
}

TEST_F(FarronTelemetryTest, ProtectionLoopEmitsBackoffTransitions) {
  FaultyMachine machine(MakeArchSpec("M2"));
  FarronConfig config;
  config.enable_adaptive_boundary = false;
  Farron farron(suite_, &machine, config);
  EventLog log;
  farron.SetEventLog(&log);
  WorkloadSpec spec;
  spec.kernel_case_index = static_cast<size_t>(suite_->IndexOf("lib.crc32.scalar.b1024"));
  spec.base_utilization = 0.45;
  spec.burst_probability = 0.02;
  spec.burst_seconds = 120.0;
  const ProtectionReport report =
      SimulateProtectedWorkload(farron, machine, *suite_, spec, 1.0, true);
  EXPECT_EQ(log.CountOf(EventKind::kBackoffEngaged), report.backoff_engagements);
  // Every engagement eventually releases (or the run ends throttled; allow off-by-one).
  EXPECT_GE(log.CountOf(EventKind::kBackoffEngaged),
            log.CountOf(EventKind::kBackoffReleased));
  EXPECT_LE(log.CountOf(EventKind::kBackoffEngaged),
            log.CountOf(EventKind::kBackoffReleased) + 1);
}

TEST_F(FarronTelemetryTest, ProtectionLoopRecordsMetrics) {
  FaultyMachine machine(MakeArchSpec("M2"));
  MetricsRegistry registry;
  FarronConfig config;
  config.enable_adaptive_boundary = false;
  config.metrics = &registry;
  Farron farron(suite_, &machine, config);
  EventLog log;
  log.AttachMetrics(&registry);
  farron.SetEventLog(&log);
  WorkloadSpec spec;
  spec.kernel_case_index = static_cast<size_t>(suite_->IndexOf("lib.crc32.scalar.b1024"));
  spec.burst_probability = 0.02;
  spec.burst_seconds = 120.0;
  const ProtectionReport report =
      SimulateProtectedWorkload(farron, machine, *suite_, spec, 1.0, true);
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterOr("protection.runs"), 1u);
  EXPECT_EQ(snapshot.CounterOr("protection.sdc_events"), report.sdc_events);
  EXPECT_EQ(snapshot.CounterOr("protection.backoff_engagements"),
            report.backoff_engagements);
  EXPECT_DOUBLE_EQ(snapshot.gauges.at("protection.max_temperature_celsius"),
                   report.max_temperature);
  EXPECT_DOUBLE_EQ(snapshot.gauges.at("protection.backoff_seconds_per_hour"),
                   report.BackoffSecondsPerHour());
  // The attached log bridged the same engagements into event counters.
  EXPECT_EQ(snapshot.CounterOr("events." + EventKindName(EventKind::kBackoffEngaged)),
            report.backoff_engagements);
}

TEST_F(FarronTelemetryTest, NoLogMeansNoCrash) {
  FaultyMachine machine(MakeArchSpec("M5"));
  FarronConfig config;
  Farron farron(suite_, &machine, config);
  EXPECT_EQ(farron.event_log(), nullptr);
  farron.ControlStep(62.0);  // emits nothing, crashes nothing
}

}  // namespace
}  // namespace sdc
