// Parameterized property sweeps:
//  * every catalog processor is detectable by its matching testcases, with the right SDC
//    type and (for single-core computation parts) the right core attribution;
//  * every micro-architecture's simulated package behaves thermally;
//  * the damage model respects width/type invariants for every datatype;
//  * every catalog defect's activation law is monotone in temperature and capped.

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "src/fault/catalog.h"
#include "src/fleet/pipeline.h"
#include "src/toolchain/framework.h"

namespace sdc {
namespace {

TestSuite* g_suite = nullptr;

class GlobalSuite : public ::testing::Environment {
 public:
  void SetUp() override { g_suite = new TestSuite(TestSuite::BuildFull()); }
  void TearDown() override {
    delete g_suite;
    g_suite = nullptr;
  }
};

const ::testing::Environment* const kSuiteEnvironment =
    ::testing::AddGlobalTestEnvironment(new GlobalSuite());

// --- Every catalog processor is caught by its matching testcases ---

class CatalogProcessorTest : public ::testing::TestWithParam<int> {};

TEST_P(CatalogProcessorTest, DetectableWithCorrectTypeAndAttribution) {
  const auto catalog = StudyCatalog();
  const FaultyProcessorInfo& info = catalog[static_cast<size_t>(GetParam())];
  ScreeningPipeline pipeline(g_suite);
  // Plan: only the testcases this part's defects can touch, tested hot.
  std::set<size_t> indices;
  for (const Defect& defect : info.defects) {
    for (size_t i = 0; i < g_suite->size(); ++i) {
      const TestcaseInfo& testcase = g_suite->info(i);
      bool op_match = false;
      for (OpKind op : testcase.ops) {
        op_match |= defect.AffectsOp(op);
      }
      if (!op_match) {
        continue;
      }
      if (defect.type() == SdcType::kComputation) {
        bool type_match = false;
        for (DataType type : testcase.types) {
          type_match |= defect.AffectsType(type);
        }
        if (!type_match) {
          continue;
        }
      }
      indices.insert(i);
    }
  }
  ASSERT_FALSE(indices.empty()) << info.cpu_id;

  FaultyMachine machine(info, 1000 + GetParam());
  TestFramework framework(g_suite);
  TestRunConfig config;
  config.time_scale = 2e7;
  config.simultaneous_cores = true;
  config.burn_in_seconds = 300.0;
  config.seed = 7;
  std::vector<TestPlanEntry> plan;
  for (size_t index : indices) {
    plan.push_back({index, 60.0});
  }
  const RunReport report = framework.RunPlan(machine, plan, config);
  // Ultra-tricky parts (trigger temperatures at/above what even hot testing reaches,
  // frequencies in the per-day range) may legitimately escape one round -- exactly the
  // paper's escape cases. Require detection only when the activation law predicts a
  // comfortable expected-error count at the hot-test temperature.
  double expected_errors = 0.0;
  const StageParams hot_stage{60.0, 71.0, 1.0};
  for (const Defect& defect : info.defects) {
    expected_errors +=
        pipeline.ExpectedErrors(defect, hot_stage, info.spec.physical_cores);
  }
  if (expected_errors >= 5.0) {
    EXPECT_TRUE(report.any_error()) << info.cpu_id << " escaped its matching testcases"
                                    << " (expected ~" << expected_errors << " errors)";
  }

  // Records carry the part's SDC type...
  for (const SdcRecord& record : report.records) {
    EXPECT_EQ(record.sdc_type, info.sdc_type()) << info.cpu_id;
  }
  // ...and computation errors stay on the defective cores (consistency attribution can
  // involve the test's partner core).
  if (info.sdc_type() == SdcType::kComputation) {
    std::set<int> defective;
    bool all_cores = false;
    for (const Defect& defect : info.defects) {
      if (defect.affected_pcores.empty()) {
        all_cores = true;
      }
      defective.insert(defect.affected_pcores.begin(), defect.affected_pcores.end());
    }
    if (!all_cores) {
      for (const TestcaseResult& result : report.results) {
        for (size_t pcore = 0; pcore < result.errors_per_pcore.size(); ++pcore) {
          if (result.errors_per_pcore[pcore] > 0) {
            EXPECT_TRUE(defective.count(static_cast<int>(pcore)))
                << info.cpu_id << " errored on healthy pcore " << pcore;
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllTwentySeven, CatalogProcessorTest, ::testing::Range(0, 27),
                         [](const ::testing::TestParamInfo<int>& param) {
                           return StudyCatalog()[static_cast<size_t>(param.param)].cpu_id;
                         });

// --- Per-architecture thermal sanity ---

class ArchThermalTest : public ::testing::TestWithParam<int> {};

TEST_P(ArchThermalTest, PackageTemperaturesInBand) {
  const ProcessorSpec spec = MakeArchSpec(GetParam());
  ThermalModel thermal(spec.physical_cores, spec.thermal);
  EXPECT_GT(thermal.IdleTemperature(), 40.0) << spec.arch;
  EXPECT_LT(thermal.IdleTemperature(), 50.0) << spec.arch;
  thermal.SettleToSteadyState(
      std::vector<double>(static_cast<size_t>(spec.physical_cores), 1.0));
  EXPECT_GT(thermal.core_temperature(0), 60.0) << spec.arch;
  EXPECT_LT(thermal.core_temperature(0), 85.0) << spec.arch;
}

TEST_P(ArchThermalTest, HealthyMachineOfArchRunsClean) {
  FaultyMachine machine(MakeArchSpec(GetParam()));
  TestFramework framework(g_suite);
  TestRunConfig config;
  config.time_scale = 1e6;
  config.seed = 5;
  config.pcores_under_test = {0};
  std::vector<TestPlanEntry> plan;
  for (size_t i = 0; i < g_suite->size(); i += 37) {
    plan.push_back({i, 0.5});
  }
  EXPECT_EQ(framework.RunPlan(machine, plan, config).total_errors(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllArches, ArchThermalTest, ::testing::Range(0, kArchCount),
                         [](const ::testing::TestParamInfo<int>& param) {
                           return ArchName(param.param);
                         });

// --- Damage-model invariants per datatype ---

class DatatypeDamageTest : public ::testing::TestWithParam<DataType> {};

TEST_P(DatatypeDamageTest, CorruptChangesValueWithinWidth) {
  const DataType type = GetParam();
  Defect defect;
  defect.pattern_probability = 0.35;
  Rng pattern_rng(51);
  defect.pattern_sets.push_back({type, {{MakePatternMask(type, 1, pattern_rng), 1.0}}});
  Rng rng(52);
  const int width = BitWidth(type);
  for (int trial = 0; trial < 500; ++trial) {
    const Word128 golden = BitsOfRaw(rng.Next(), std::min(width, 64));
    const Word128 corrupted = defect.Corrupt(golden, type, rng);
    EXPECT_NE(corrupted, golden);
    for (int bit = width; bit < 128; ++bit) {
      EXPECT_EQ(corrupted.GetBit(bit), golden.GetBit(bit)) << "bit " << bit;
    }
  }
}

TEST_P(DatatypeDamageTest, FlipPositionsInRange) {
  const DataType type = GetParam();
  Rng rng(53);
  for (int trial = 0; trial < 2000; ++trial) {
    const int position = SampleFlipPosition(type, rng);
    EXPECT_GE(position, 0);
    EXPECT_LT(position, BitWidth(type));
  }
}

INSTANTIATE_TEST_SUITE_P(AllTypes, DatatypeDamageTest,
                         ::testing::Values(DataType::kInt16, DataType::kInt32,
                                           DataType::kUInt32, DataType::kFloat32,
                                           DataType::kFloat64, DataType::kFloat80,
                                           DataType::kBit, DataType::kByte,
                                           DataType::kBin16, DataType::kBin32,
                                           DataType::kBin64),
                         [](const ::testing::TestParamInfo<DataType>& param) {
                           std::string name = DataTypeName(param.param);
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) {
                               c = '_';
                             }
                           }
                           return name;
                         });

// --- Activation-law properties across every catalog defect ---

TEST(DefectLawTest, RateMonotoneInTemperatureAndCapped) {
  for (const FaultyProcessorInfo& info : StudyCatalog()) {
    for (const Defect& defect : info.defects) {
      int best_pcore = 0;
      double best_scale = 0.0;
      for (int pcore = 0; pcore < info.spec.physical_cores; ++pcore) {
        if (defect.PcoreScale(pcore) > best_scale) {
          best_scale = defect.PcoreScale(pcore);
          best_pcore = pcore;
        }
      }
      double previous = -1.0;
      for (double temperature = 40.0; temperature <= 90.0; temperature += 5.0) {
        const double rate =
            defect.RatePerOp(temperature, defect.intensity_ref, best_pcore);
        EXPECT_GE(rate, previous) << defect.id << " @ " << temperature;
        EXPECT_LE(rate, 1.0);
        // Frequency cap: never beyond ~2000 errors/minute at reference intensity.
        EXPECT_LE(defect.OccurrenceFrequencyPerMinute(temperature, defect.intensity_ref,
                                                      best_pcore),
                  2000.0 * 1.01)
            << defect.id;
        previous = rate;
      }
      EXPECT_EQ(defect.RatePerOp(defect.min_trigger_celsius - 0.1, defect.intensity_ref,
                                 best_pcore),
                0.0)
          << defect.id;
    }
  }
}

}  // namespace
}  // namespace sdc
