// Tests for src/report: JSON writer correctness (escaping, nesting, separators) and the
// exporters' structural sanity.

#include <sstream>

#include <gtest/gtest.h>

#include "src/report/exporters.h"
#include "src/report/json_writer.h"

namespace sdc {
namespace {

// Structural JSON validation: balanced braces/brackets outside strings, no trailing commas.
void ExpectStructurallyValidJson(const std::string& text) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  char previous_significant = '\0';
  for (char c : text) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
        previous_significant = '"';
      }
      continue;
    }
    switch (c) {
      case '"':
        in_string = true;
        break;
      case '{':
      case '[':
        ++depth;
        previous_significant = c;
        break;
      case '}':
      case ']':
        ASSERT_NE(previous_significant, ',') << "trailing comma before " << c;
        --depth;
        ASSERT_GE(depth, 0);
        previous_significant = c;
        break;
      case ',':
      case ':':
        previous_significant = c;
        break;
      default:
        if (!std::isspace(static_cast<unsigned char>(c))) {
          previous_significant = c;
        }
    }
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

TEST(JsonWriterTest, SimpleObject) {
  std::ostringstream out;
  JsonWriter json(out, /*pretty=*/false);
  json.BeginObject().KeyValue("a", 1).KeyValue("b", "two").KeyValue("c", true).EndObject();
  EXPECT_EQ(out.str(), R"({"a":1,"b":"two","c":true})");
  EXPECT_TRUE(json.Complete());
}

TEST(JsonWriterTest, NestedContainers) {
  std::ostringstream out;
  JsonWriter json(out, false);
  json.BeginObject();
  json.Key("list").BeginArray().Value(1).Value(2).BeginObject().KeyValue("x", 0.5).EndObject().EndArray();
  json.Key("empty").BeginArray().EndArray();
  json.Key("none").Null();
  json.EndObject();
  EXPECT_EQ(out.str(), R"({"list":[1,2,{"x":0.5}],"empty":[],"none":null})");
}

TEST(JsonWriterTest, EscapesControlAndQuote) {
  EXPECT_EQ(JsonWriter::Escape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonWriter::Escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(JsonWriter::Escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
  EXPECT_EQ(JsonWriter::Escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(JsonWriterTest, PassesUtf8ThroughUnescaped) {
  // Multi-byte UTF-8 must survive byte-for-byte: every byte of these sequences is
  // >= 0x80, which a signed-char escape path would sign-extend into "\uffffffxx"-style
  // garbage instead of leaving alone.
  const std::string utf8 = "temp 温度 \xC3\xA9\xE2\x82\xAC";  // CJK, e-acute, euro sign
  EXPECT_EQ(JsonWriter::Escape(utf8), utf8);
  // A 4-byte sequence (U+1F600) round-trips too.
  const std::string emoji = "\xF0\x9F\x98\x80";
  EXPECT_EQ(JsonWriter::Escape(emoji), emoji);
}

TEST(JsonWriterTest, EscapesControlBytesAmongUtf8) {
  // Control bytes below 0x20 escape as exactly four lowercase hex digits; DEL (0x7f) and
  // high bytes are not control characters in JSON and pass through.
  EXPECT_EQ(JsonWriter::Escape(std::string_view("\x1f\x7f\x80", 3)), "\\u001f\x7f\x80");
  const std::string mixed = std::string("a\x01") + "\xE2\x82\xAC" + "\x02z";
  EXPECT_EQ(JsonWriter::Escape(mixed), "a\\u0001" "\xE2\x82\xAC" "\\u0002" "z");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  std::ostringstream out;
  JsonWriter json(out, false);
  json.BeginArray().Value(1.5).Value(std::numeric_limits<double>::infinity()).EndArray();
  EXPECT_EQ(out.str(), "[1.5,null]");
}

TEST(JsonWriterTest, PrettyPrintingIndents) {
  std::ostringstream out;
  JsonWriter json(out, true);
  json.BeginObject().KeyValue("k", 1).EndObject();
  EXPECT_NE(out.str().find("\n  \"k\": 1"), std::string::npos);
}

#ifdef NDEBUG
// Dangling-key recovery is release-only behaviour: in debug builds the same misuse
// asserts instead of silently papering over the bug.
TEST(JsonWriterTest, DanglingKeyBeforeEndEmitsNull) {
  std::ostringstream out;
  JsonWriter json(out, false);
  json.BeginObject().Key("orphan").EndObject();
  EXPECT_EQ(out.str(), R"({"orphan":null})");
  EXPECT_TRUE(json.Complete());
}

TEST(JsonWriterTest, KeyAfterKeyClosesTheAbandonedKey) {
  std::ostringstream out;
  JsonWriter json(out, false);
  json.BeginObject().Key("first").Key("second").Value(2).EndObject();
  EXPECT_EQ(out.str(), R"({"first":null,"second":2})");
}

TEST(JsonWriterTest, DanglingKeyBeforeEndArrayStaysParseable) {
  std::ostringstream out;
  JsonWriter json(out, false);
  json.BeginObject();
  json.Key("list").BeginArray().Value(1).EndArray();
  json.Key("orphan");
  json.EndObject();
  ExpectStructurallyValidJson(out.str());
  EXPECT_EQ(out.str(), R"({"list":[1],"orphan":null})");
}
#endif  // NDEBUG

TEST(ExportersTest, MetricsJsonIsStructurallyValid) {
  MetricsRegistry registry;
  registry.Add("screening.tested", 1000);
  registry.Add("screening.faulty", 3);
  registry.Set("protection.max_temperature_celsius", 61.5);
  registry.Observe("toolchain.entry_errors", 2.0, 0.0, 50.0, 10);
  registry.RecordTimerSeconds("screening.run.wall", 0.125);
  std::ostringstream out;
  WriteMetricsJson(out, registry.Snapshot());
  ExpectStructurallyValidJson(out.str());
  EXPECT_NE(out.str().find(R"("screening.tested": 1000)"), std::string::npos);
  EXPECT_NE(out.str().find(R"("protection.max_temperature_celsius")"), std::string::npos);
  EXPECT_NE(out.str().find(R"("counts")"), std::string::npos);
  EXPECT_NE(out.str().find(R"("nondeterministic": true)"), std::string::npos);
}

TEST(ExportersTest, MetricsJsonCanExcludeTimers) {
  MetricsRegistry registry;
  registry.Add("n", 1);
  registry.RecordTimerSeconds("t", 0.5);
  std::ostringstream with_timers;
  WriteMetricsJson(with_timers, registry.Snapshot(), /*include_timers=*/true);
  std::ostringstream without_timers;
  WriteMetricsJson(without_timers, registry.Snapshot(), /*include_timers=*/false);
  EXPECT_NE(with_timers.str().find(R"("timers")"), std::string::npos);
  EXPECT_EQ(without_timers.str().find(R"("timers")"), std::string::npos);
  ExpectStructurallyValidJson(without_timers.str());
}

TEST(ExportersTest, RunReportJsonIsStructurallyValid) {
  RunReport report;
  TestcaseResult result;
  result.testcase_id = "loop.int_add.i32.n96";
  result.duration_seconds = 60.0;
  result.errors = 3;
  result.errors_per_pcore = {3, 0};
  report.results.push_back(result);
  SdcRecord record;
  record.testcase_id = "loop.int_add.i32.n96";
  record.cpu_id = "X\"quoted\"";
  record.expected = BitsOfInt32(7);
  record.actual = BitsOfInt32(5);
  report.records.push_back(record);
  std::ostringstream out;
  WriteRunReportJson(out, report);
  ExpectStructurallyValidJson(out.str());
  EXPECT_NE(out.str().find("\"errors\": 3"), std::string::npos);
  EXPECT_NE(out.str().find("X\\\"quoted\\\""), std::string::npos);
}

TEST(ExportersTest, RunReportRecordCapIsHonored) {
  RunReport report;
  for (int i = 0; i < 10; ++i) {
    SdcRecord record;
    record.testcase_id = "t";
    report.records.push_back(record);
  }
  std::ostringstream out;
  WriteRunReportJson(out, report, /*max_records=*/3);
  ExpectStructurallyValidJson(out.str());
  EXPECT_NE(out.str().find("\"records_truncated\": true"), std::string::npos);
}

TEST(ExportersTest, ScreeningStatsJson) {
  ScreeningStats stats;
  stats.tested = 1000;
  stats.faulty = 5;
  stats.detected_by_stage[0] = 2;
  stats.tested_by_arch[0] = 400;
  stats.detected_by_arch[0] = 2;
  std::ostringstream out;
  WriteScreeningStatsJson(out, stats);
  ExpectStructurallyValidJson(out.str());
  EXPECT_NE(out.str().find("\"stage\": \"factory\""), std::string::npos);
  EXPECT_NE(out.str().find("\"arch\": \"M1\""), std::string::npos);
}

TEST(ExportersTest, CatalogJsonCoversAllProcessorsAndDefects) {
  const auto catalog = StudyCatalog();
  std::ostringstream out;
  WriteCatalogJson(out, catalog);
  const std::string text = out.str();
  ExpectStructurallyValidJson(text);
  for (const char* name : {"MIX1", "MIX2", "SIMD1", "CNST2", "COMP11", "CNST8"}) {
    EXPECT_NE(text.find(name), std::string::npos) << name;
  }
  EXPECT_NE(text.find("mix1-tricky-veccrc"), std::string::npos);
  EXPECT_NE(text.find("\"min_trigger_celsius\": 59"), std::string::npos);
}

}  // namespace
}  // namespace sdc
