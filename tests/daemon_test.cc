// sdcd daemon unit tests (src/daemon/): campaign spec parsing keeps the CLI's strict
// operand discipline on the socket (empty and truncated specs are errors, never default
// campaigns); the line protocol answers malformed requests with err codes rather than
// crashes or defaults; and campaigns multiplexed through one CampaignManager produce
// byte-identical deterministic output (stats JSON, metrics JSON without timers, sim trace
// JSON) to serial one-shot streaming runs. Runs under TSAN in CI: the manager's worker
// threads, the scheduler, and cancellation all execute here.

#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/context.h"
#include "src/daemon/campaign.h"
#include "src/daemon/protocol.h"
#include "src/daemon/spec.h"
#include "src/fleet/pipeline.h"
#include "src/fleet/stream.h"
#include "src/report/exporters.h"
#include "src/scrub/scrubber.h"
#include "src/toolchain/registry.h"

namespace sdc {
namespace {

// ---------------------------------------------------------------------------
// Spec parsing

TEST(CampaignSpecTest, ParsesFullSpec) {
  CampaignSpec spec;
  std::string error;
  ASSERT_TRUE(ParseCampaignSpec(
      "name=nightly processors=250000 seed=42 lanes=4 scenario.seed=9 "
      "scenario.period_months=3",
      spec, error))
      << error;
  EXPECT_EQ(spec.name, "nightly");
  EXPECT_EQ(spec.processors, 250000u);
  EXPECT_EQ(spec.seed, 42u);
  EXPECT_EQ(spec.lanes, 4);
  ASSERT_EQ(spec.scenarios.size(), 1u);
  EXPECT_EQ(spec.scenarios[0].config.seed, 9u);
  EXPECT_DOUBLE_EQ(spec.scenarios[0].config.regular_period_months, 3.0);
}

TEST(CampaignSpecTest, SweepExpandsScenarios) {
  CampaignSpec spec;
  std::string error;
  ASSERT_TRUE(ParseCampaignSpec("sweep=seeds:3", spec, error)) << error;
  ASSERT_EQ(spec.scenarios.size(), 3u);
  EXPECT_EQ(spec.scenarios[1].config.seed, spec.scenarios[0].config.seed + 1);
}

TEST(CampaignSpecTest, RejectsMalformedSpecs) {
  CampaignSpec spec;
  std::string error;
  // The truncated-submit cases: empty and whitespace-only specs.
  EXPECT_FALSE(ParseCampaignSpec("", spec, error));
  EXPECT_EQ(error, "empty campaign spec");
  EXPECT_FALSE(ParseCampaignSpec("   ", spec, error));
  EXPECT_FALSE(ParseCampaignSpec("processors", spec, error));       // no '='
  EXPECT_FALSE(ParseCampaignSpec("processors=", spec, error));      // empty value
  EXPECT_FALSE(ParseCampaignSpec("processors=0", spec, error));     // out of range
  EXPECT_FALSE(ParseCampaignSpec("processors=10x", spec, error));   // trailing garbage
  EXPECT_FALSE(ParseCampaignSpec("lanes=0", spec, error));
  EXPECT_FALSE(ParseCampaignSpec("lanes=-2", spec, error));
  EXPECT_FALSE(ParseCampaignSpec("bogus=1", spec, error));          // unknown key
  EXPECT_FALSE(ParseCampaignSpec("name=", spec, error));
  EXPECT_FALSE(ParseCampaignSpec("scenario.bogus=1", spec, error));
  EXPECT_FALSE(ParseCampaignSpec("sweep=seeds:0", spec, error));
  EXPECT_FALSE(ParseCampaignSpec("sweep=seeds:2 scenario.seed=3", spec, error));
  EXPECT_EQ(error, "sweep= and scenario.* keys are mutually exclusive");
}

TEST(CampaignSpecTest, ParsesScrubSpec) {
  CampaignSpec spec;
  std::string error;
  ASSERT_TRUE(ParseCampaignSpec(
      "name=bg kind=scrub processors=20000 seed=7 scrub.budget=2e-5 "
      "scrub.horizon_months=3 scrub.epoch_months=0.5 scrub.max_cases=8 "
      "scrub.sample_hours=0.02 scenario.seed=9",
      spec, error))
      << error;
  EXPECT_EQ(spec.kind, "scrub");
  EXPECT_DOUBLE_EQ(spec.scrub_budget_fraction, 2e-5);
  EXPECT_DOUBLE_EQ(spec.scrub_horizon_months, 3.0);
  EXPECT_DOUBLE_EQ(spec.scrub_epoch_months, 0.5);
  EXPECT_EQ(spec.scrub_max_cases, 8u);
  EXPECT_DOUBLE_EQ(spec.scrub_sample_hours, 0.02);
  ASSERT_EQ(spec.scenarios.size(), 1u);  // the discovery scenario
  EXPECT_EQ(spec.scenarios[0].config.seed, 9u);
}

TEST(CampaignSpecTest, RejectsMalformedScrubSpecs) {
  CampaignSpec spec;
  std::string error;
  EXPECT_FALSE(ParseCampaignSpec("kind=paint", spec, error));  // unknown kind
  EXPECT_FALSE(ParseCampaignSpec("scrub.budget=1e-5", spec, error));
  EXPECT_EQ(error, "scrub.* keys require kind=scrub");
  EXPECT_FALSE(ParseCampaignSpec("kind=scrub sweep=seeds:2", spec, error));
  EXPECT_EQ(error, "kind=scrub runs one discovery scenario; sweep= is not allowed");
  EXPECT_FALSE(ParseCampaignSpec("kind=scrub scrub.budget=-1", spec, error));
  EXPECT_FALSE(ParseCampaignSpec("kind=scrub scrub.horizon_months=0", spec, error));
  EXPECT_FALSE(ParseCampaignSpec("kind=scrub scrub.epoch_months=0", spec, error));
  EXPECT_FALSE(ParseCampaignSpec("kind=scrub scrub.max_cases=8x", spec, error));
  EXPECT_FALSE(ParseCampaignSpec("kind=scrub scrub.sample_hours=-0.1", spec, error));
}

// ---------------------------------------------------------------------------
// Protocol

TEST(ProtocolTest, MalformedRequestsGetProtoErrors) {
  CampaignManager manager(1);
  EXPECT_EQ(HandleRequestLine(manager, "").line, "err proto empty request");
  EXPECT_EQ(HandleRequestLine(manager, "frobnicate").line,
            "err proto unknown verb 'frobnicate'");
  // Id-less status is the daemon health line, not an error; every other id verb still
  // requires one.
  EXPECT_EQ(HandleRequestLine(manager, "stats").line,
            "err proto stats needs a campaign id");
  EXPECT_EQ(HandleRequestLine(manager, "wait").line,
            "err proto wait needs a campaign id");
  EXPECT_EQ(HandleRequestLine(manager, "status 1x").line,
            "err proto invalid campaign id '1x'");
  EXPECT_EQ(HandleRequestLine(manager, "status -1").line,
            "err proto invalid campaign id '-1'");
  // Truncated submit: the spec parser's strictness surfaces as err spec.
  EXPECT_EQ(HandleRequestLine(manager, "submit").line,
            "err spec empty campaign spec");
  EXPECT_EQ(HandleRequestLine(manager, "submit processors=").line,
            "err spec invalid processors ''");
}

TEST(ProtocolTest, UnknownIdAndNotDoneAreRuntimeErrors) {
  CampaignManager manager(1);
  EXPECT_EQ(HandleRequestLine(manager, "status 7").line, "err unknown-id no campaign 7");
  EXPECT_EQ(HandleRequestLine(manager, "stats 7").line, "err unknown-id no campaign 7");
  EXPECT_EQ(HandleRequestLine(manager, "cancel 7").line, "err unknown-id no campaign 7");
  EXPECT_EQ(HandleRequestLine(manager, "result 7").line, "err unknown-id no campaign 7");
  EXPECT_EQ(HandleRequestLine(manager, "ping").line, "ok pong");
  const ProtocolReply list = HandleRequestLine(manager, "list");
  EXPECT_EQ(list.line, "ok count=0 bytes=0");
  EXPECT_TRUE(list.payload.empty());
}

TEST(ProtocolTest, IdLessStatusReportsDaemonHealth) {
  CampaignManager manager(3);
  EXPECT_EQ(HandleRequestLine(manager, "status").line,
            "ok lanes=0/3 queued=0 campaigns=0 events=0 dropped=0");
  HandleRequestLine(manager, "submit name=h processors=20000 lanes=1");
  HandleRequestLine(manager, "wait 1");
  const std::string health = HandleRequestLine(manager, "status").line;
  // One campaign through the full lifecycle: submitted + started + finished = 3 events.
  EXPECT_EQ(health, "ok lanes=0/3 queued=0 campaigns=1 events=3 dropped=0") << health;
}

TEST(ProtocolTest, StatusLineCarriesProgressDetectionsAndTimestamps) {
  CampaignManager manager(1);
  HandleRequestLine(manager, "submit name=t processors=20000 seed=5");
  HandleRequestLine(manager, "wait 1");
  const std::string line = HandleRequestLine(manager, "status 1").line;
  EXPECT_NE(line.find(" progress=1.0000"), std::string::npos) << line;
  EXPECT_NE(line.find(" detections="), std::string::npos) << line;
  // All three host timestamps are set once the campaign is done, and they order.
  CampaignStatus status;
  {
    const auto statuses = manager.List();
    ASSERT_EQ(statuses.size(), 1u);
    status = statuses[0];
  }
  EXPECT_GT(status.submit_unix, 0.0);
  EXPECT_GE(status.start_unix, status.submit_unix);
  EXPECT_GE(status.finish_unix, status.start_unix);
  EXPECT_DOUBLE_EQ(status.progress(), 1.0);
  manager.Shutdown();
}

TEST(ProtocolTest, StatsVerbReturnsLiveSeriesInAnyState) {
  CampaignManager manager(2);
  HandleRequestLine(manager, "submit name=s processors=50000 lanes=2");
  // Valid immediately -- queued or running -- not just after completion.
  const ProtocolReply early = HandleRequestLine(manager, "stats 1");
  EXPECT_TRUE(early.line.rfind("ok id=1 name=s", 0) == 0) << early.line;
  EXPECT_FALSE(early.payload.empty());
  EXPECT_EQ(early.payload.front(), '{');
  HandleRequestLine(manager, "wait 1");
  const ProtocolReply done = HandleRequestLine(manager, "stats 1");
  EXPECT_NE(done.line.find("state=done"), std::string::npos) << done.line;
  // A finished screen campaign's series has the full screening trajectory.
  EXPECT_NE(done.payload.find("screening.tested"), std::string::npos);
  EXPECT_NE(done.payload.find("fleet.generate.faulty"), std::string::npos);
  manager.Shutdown();
}

TEST(ProtocolTest, PromVerbEmitsDaemonWideExposition) {
  CampaignManager manager(2);
  HandleRequestLine(manager, "submit name=pa processors=20000 lanes=1");
  HandleRequestLine(manager, "submit name=pb processors=20000 lanes=1");
  HandleRequestLine(manager, "wait 1");
  HandleRequestLine(manager, "wait 2");
  const ProtocolReply prom = HandleRequestLine(manager, "prom");
  EXPECT_EQ(prom.line, "ok bytes=" + std::to_string(prom.payload.size()));
  // Aggregated engine counters, daemon health, and one labelled sample per campaign.
  EXPECT_NE(prom.payload.find("# TYPE sdc_daemon_lanes gauge"), std::string::npos);
  EXPECT_NE(prom.payload.find("sdc_daemon_campaigns_total 2"), std::string::npos);
  EXPECT_NE(prom.payload.find("sdc_campaign_progress{id=\"1\",name=\"pa\"} 1"),
            std::string::npos)
      << prom.payload;
  EXPECT_NE(prom.payload.find("sdc_campaign_progress{id=\"2\",name=\"pb\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.payload.find("sdc_screening_tested_total"), std::string::npos);
  manager.Shutdown();
}

TEST(CampaignManagerTest, TinyEventCapacityDropsOldestAndCounts) {
  // Three campaigns x three lifecycle transitions = 9 events against a 2-slot ring: the
  // log must retain the newest 2 and surface dropped=7 in DaemonStats (and from there
  // the health line and sdc_daemon_events_dropped_total).
  CampaignManager manager(1, /*event_capacity=*/2);
  for (int i = 0; i < 3; ++i) {
    HandleRequestLine(manager,
                      "submit name=d" + std::to_string(i) + " processors=20000");
    HandleRequestLine(manager, "wait " + std::to_string(i + 1));
  }
  const DaemonStats stats = manager.GetDaemonStats();
  EXPECT_EQ(stats.events_recorded, 9u);
  EXPECT_EQ(stats.events_dropped, 7u);
  const std::string health = HandleRequestLine(manager, "status").line;
  EXPECT_NE(health.find("events=9 dropped=7"), std::string::npos) << health;
  const ProtocolReply prom = HandleRequestLine(manager, "prom");
  EXPECT_NE(prom.payload.find("sdc_daemon_events_dropped_total 7"), std::string::npos);
  manager.Shutdown();
}

TEST(CampaignManagerTest, DaemonStatsTracksHostSeries) {
  CampaignManager manager(2);
  HandleRequestLine(manager, "submit name=hs processors=20000 lanes=1");
  HandleRequestLine(manager, "wait 1");
  const DaemonStats stats = manager.GetDaemonStats();
  // Lifecycle transitions append host-clock occupancy samples; they live in the host
  // section by contract (nondeterministic, excluded from byte-compares).
  ASSERT_EQ(stats.host_series.host.count("daemon.lanes_in_use"), 1u);
  ASSERT_EQ(stats.host_series.host.count("daemon.queue_depth"), 1u);
  EXPECT_TRUE(stats.host_series.sim.empty());
  EXPECT_EQ(stats.host_series.host.at("daemon.lanes_in_use").points.size(), 3u);
  manager.Shutdown();
}

TEST(ProtocolTest, SubmitWaitResultRoundTrip) {
  CampaignManager manager(2);
  const ProtocolReply submitted =
      HandleRequestLine(manager, "submit name=t processors=20000 seed=5 lanes=2");
  ASSERT_EQ(submitted.line, "ok id=1");
  EXPECT_EQ(HandleRequestLine(manager, "wait 1").line, "ok state=done");
  const ProtocolReply status = HandleRequestLine(manager, "status 1");
  EXPECT_TRUE(status.line.rfind("ok id=1 name=t state=done lanes=2", 0) == 0)
      << status.line;
  const ProtocolReply result = HandleRequestLine(manager, "result 1");
  EXPECT_EQ(result.line, "ok bytes=" + std::to_string(result.payload.size()));
  EXPECT_FALSE(result.payload.empty());
  EXPECT_EQ(result.payload.front(), '{');
  // Scenario index out of range is a proto error; a second fetch still works (results
  // are stable for the manager's lifetime).
  EXPECT_TRUE(HandleRequestLine(manager, "result 1 3").line.rfind("err proto", 0) == 0);
  EXPECT_EQ(HandleRequestLine(manager, "result 1 0").payload, result.payload);
  const ProtocolReply shutdown = HandleRequestLine(manager, "shutdown");
  EXPECT_EQ(shutdown.line, "ok bye");
  EXPECT_TRUE(shutdown.shutdown);
  manager.Shutdown();
  EXPECT_EQ(HandleRequestLine(manager, "submit processors=1000").line,
            "err shutdown daemon is shutting down");
}

// ---------------------------------------------------------------------------
// Campaign equivalence and cancellation

// The one-shot baseline a daemon campaign must match byte for byte: a fused streaming
// pass of the same spec on a fresh context.
CampaignResult RunOneShot(const CampaignSpec& spec) {
  MetricsRegistry registry;
  TraceRecorder recorder;
  EngineContext context(EngineOptions{.threads = spec.lanes,
                                      .env_overrides = false,
                                      .metrics = &registry,
                                      .trace = &recorder});
  PopulationConfig population;
  population.processor_count = spec.processors;
  population.seed = spec.seed;
  const TestSuite suite = TestSuite::BuildFull();
  ScreeningPipeline pipeline(&suite);
  ScenarioBatch batch;
  for (const SweepScenario& scenario : spec.scenarios) {
    batch.scenarios.push_back(scenario.config);
  }
  FleetShardStream stream(population);
  StreamingScreen screen(&pipeline, batch);
  stream.Drive({&screen}, context);
  CampaignResult result;
  result.stats = screen.TakeBatchStats();
  result.metrics = registry.Snapshot();
  result.trace = recorder.Snapshot();
  return result;
}

std::string StatsJson(const ScreeningStats& stats) {
  std::ostringstream out;
  WriteScreeningStatsJson(out, stats);
  return out.str();
}

std::string MetricsJson(const MetricsSnapshot& snapshot) {
  std::ostringstream out;
  WriteMetricsJson(out, snapshot, /*include_timers=*/false);
  return out.str();
}

std::string TraceJson(const TraceSnapshot& snapshot) {
  std::ostringstream out;
  WriteTraceJson(out, snapshot, /*include_host=*/false);
  return out.str();
}

void ExpectSameResult(const CampaignResult& daemon, const CampaignResult& one_shot) {
  ASSERT_EQ(daemon.stats.size(), one_shot.stats.size());
  for (size_t k = 0; k < daemon.stats.size(); ++k) {
    EXPECT_EQ(StatsJson(daemon.stats[k]), StatsJson(one_shot.stats[k])) << "scenario " << k;
  }
  EXPECT_EQ(MetricsJson(daemon.metrics), MetricsJson(one_shot.metrics));
  EXPECT_EQ(TraceJson(daemon.trace), TraceJson(one_shot.trace));
}

TEST(CampaignManagerTest, InterleavedCampaignsMatchOneShotRuns) {
  CampaignSpec spec_a;
  std::string error;
  ASSERT_TRUE(
      ParseCampaignSpec("name=a processors=60000 seed=11 lanes=2", spec_a, error));
  CampaignSpec spec_b;
  ASSERT_TRUE(ParseCampaignSpec(
      "name=b processors=90000 seed=22 lanes=2 sweep=seeds:2", spec_b, error));

  const CampaignResult baseline_a = RunOneShot(spec_a);
  const CampaignResult baseline_b = RunOneShot(spec_b);

  // Both campaigns fit the budget together, so they genuinely overlap.
  CampaignManager manager(4);
  const uint64_t id_a = manager.Submit(spec_a);
  const uint64_t id_b = manager.Submit(spec_b);
  ASSERT_EQ(id_a, 1u);
  ASSERT_EQ(id_b, 2u);
  EXPECT_EQ(manager.Wait(id_a), CampaignState::kDone);
  EXPECT_EQ(manager.Wait(id_b), CampaignState::kDone);
  ASSERT_NE(manager.Result(id_a), nullptr);
  ASSERT_NE(manager.Result(id_b), nullptr);
  ExpectSameResult(*manager.Result(id_a), baseline_a);
  ExpectSameResult(*manager.Result(id_b), baseline_b);

  const auto status_a = manager.GetStatus(id_a);
  ASSERT_TRUE(status_a.has_value());
  EXPECT_EQ(status_a->state, CampaignState::kDone);
  EXPECT_EQ(status_a->shards_done, status_a->shards_total);
}

TEST(CampaignManagerTest, AdmissionIsFifoWithinLaneBudget) {
  // One lane total: the second campaign must queue behind the first, and both still
  // complete with correct results.
  CampaignSpec spec;
  std::string error;
  ASSERT_TRUE(ParseCampaignSpec("processors=30000 seed=3", spec, error));
  const CampaignResult baseline = RunOneShot(spec);
  CampaignManager manager(1);
  const uint64_t first = manager.Submit(spec);
  const uint64_t second = manager.Submit(spec);
  EXPECT_EQ(manager.Wait(first), CampaignState::kDone);
  EXPECT_EQ(manager.Wait(second), CampaignState::kDone);
  ExpectSameResult(*manager.Result(first), baseline);
  ExpectSameResult(*manager.Result(second), baseline);
}

TEST(CampaignManagerTest, CancelStopsACampaign) {
  CampaignManager manager(1);
  CampaignSpec spec;
  std::string error;
  ASSERT_TRUE(ParseCampaignSpec("processors=200000 seed=9", spec, error));
  // Saturate the single lane, then cancel a queued campaign: it must never run.
  const uint64_t running = manager.Submit(spec);
  const uint64_t queued = manager.Submit(spec);
  EXPECT_TRUE(manager.Cancel(queued));
  EXPECT_EQ(manager.Wait(queued), CampaignState::kCancelled);
  EXPECT_EQ(manager.Result(queued), nullptr);
  // Cancelling the running campaign stops it at a shard boundary (or it finished first;
  // both are terminal, neither hangs).
  EXPECT_TRUE(manager.Cancel(running));
  const auto state = manager.Wait(running);
  ASSERT_TRUE(state.has_value());
  EXPECT_TRUE(*state == CampaignState::kCancelled || *state == CampaignState::kDone);
  EXPECT_FALSE(manager.Cancel(999));  // unknown id
}

// ---------------------------------------------------------------------------
// Scrub campaigns

// The spec a scrub campaign is tested with: small fleet, short horizon, narrow test
// windows -- cheap enough for TSAN while still funding real sessions.
constexpr char kScrubSpec[] =
    "name=bg kind=scrub processors=20000 seed=20210101 lanes=2 scrub.budget=2e-5 "
    "scrub.horizon_months=3 scrub.max_cases=8 scrub.sample_hours=0.02";

std::string ScrubJson(const ScrubReport& report) {
  std::ostringstream out;
  WriteScrubReportJson(out, report);
  return out.str();
}

TEST(CampaignManagerTest, ScrubCampaignMatchesDirectRun) {
  CampaignSpec spec;
  std::string error;
  ASSERT_TRUE(ParseCampaignSpec(kScrubSpec, spec, error)) << error;

  // The direct baseline: the same ScrubConfig the campaign branch builds, run without
  // the daemon. The report must match byte for byte (it is thread-count independent, so
  // the lane grant cannot show through).
  ScrubConfig config;
  config.population.processor_count = spec.processors;
  config.population.seed = spec.seed;
  config.screening = spec.scenarios.front().config;
  config.budget_fraction = spec.scrub_budget_fraction;
  config.horizon_months = spec.scrub_horizon_months;
  config.max_cases_per_round = spec.scrub_max_cases;
  config.workload_sample_hours = spec.scrub_sample_hours;
  config.threads = 1;
  const TestSuite suite = TestSuite::BuildFull();
  const ScrubReport baseline = FleetScrubber(&suite).Run(config);

  CampaignManager manager(2);
  const uint64_t id = manager.Submit(spec);
  EXPECT_EQ(manager.Wait(id), CampaignState::kDone);
  const CampaignResult* result = manager.Result(id);
  ASSERT_NE(result, nullptr);
  ASSERT_TRUE(result->scrub.has_value());
  EXPECT_TRUE(result->stats.empty());  // scrub campaigns publish the report, not stats
  EXPECT_EQ(ScrubJson(*result->scrub), ScrubJson(baseline));

  // The progress ledger counted epochs, not stream shards.
  const auto status = manager.GetStatus(id);
  ASSERT_TRUE(status.has_value());
  EXPECT_EQ(status->shards_total, baseline.timeline.size());
  EXPECT_EQ(status->shards_done, status->shards_total);

  // The protocol's result verb renders the scrub report and rejects scenario indices.
  const ProtocolReply reply = HandleRequestLine(manager, "result " + std::to_string(id));
  EXPECT_EQ(reply.payload, ScrubJson(baseline));
  EXPECT_EQ(HandleRequestLine(manager, "result " + std::to_string(id) + " 0").line,
            "err proto scrub campaigns have no scenario index");
}

TEST(CampaignManagerTest, CancelStopsAScrubCampaignAtAnEpochBoundary) {
  CampaignManager manager(1);
  CampaignSpec spec;
  std::string error;
  // A long horizon so the epoch loop, not discovery, dominates: the cancel request is
  // observed by the next epoch_tick and the run abandons its remaining epochs.
  ASSERT_TRUE(ParseCampaignSpec(
      "kind=scrub processors=150000 scrub.horizon_months=1200 scrub.budget=2e-5 "
      "scrub.max_cases=8 scrub.sample_hours=0.02",
      spec, error))
      << error;
  const uint64_t id = manager.Submit(spec);
  EXPECT_TRUE(manager.Cancel(id));
  const auto state = manager.Wait(id);
  ASSERT_TRUE(state.has_value());
  // Cancelled at the boundary, or it won the race and finished; neither hangs.
  EXPECT_TRUE(*state == CampaignState::kCancelled || *state == CampaignState::kDone);
  if (*state == CampaignState::kCancelled) {
    EXPECT_EQ(manager.Result(id), nullptr);  // a cancelled run publishes no report
  }
}

TEST(CampaignManagerTest, ShutdownCancelsOutstandingCampaigns) {
  CampaignManager manager(1);
  CampaignSpec spec;
  std::string error;
  ASSERT_TRUE(ParseCampaignSpec("processors=200000 seed=9", spec, error));
  const uint64_t a = manager.Submit(spec);
  const uint64_t b = manager.Submit(spec);
  manager.Shutdown();  // joins both workers; nothing may hang
  for (const uint64_t id : {a, b}) {
    const auto status = manager.GetStatus(id);
    ASSERT_TRUE(status.has_value());
    EXPECT_TRUE(status->state == CampaignState::kCancelled ||
                status->state == CampaignState::kDone);
  }
  EXPECT_EQ(manager.Submit(spec), 0u);  // post-shutdown submits are refused
}

}  // namespace
}  // namespace sdc
