// Equivalence suite for the memoized detection model (docs/performance.md): the default
// cached screening path must be byte-identical -- every counter, every detection in
// order, detection months compared bitwise -- to the retained pre-memoization reference
// implementation (ScreeningConfig::use_reference_model) at several thread counts. Any
// divergence means the memoization changed the model or the RNG draw order, both of
// which break the determinism contract in docs/parallelism.md.

#include <cstring>
#include <sstream>

#include <gtest/gtest.h>

#include "src/fleet/pipeline.h"
#include "src/fleet/population.h"
#include "src/report/exporters.h"
#include "src/telemetry/metrics.h"

namespace sdc {
namespace {

constexpr uint64_t kFleetSize = 250000;

class ScreeningModelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    PopulationConfig config;
    config.processor_count = kFleetSize;
    config.seed = 20260805;
    fleet_ = new FleetPopulation(FleetPopulation::Generate(config));
    suite_ = new TestSuite(TestSuite::BuildFull());
  }
  static void TearDownTestSuite() {
    delete fleet_;
    delete suite_;
    fleet_ = nullptr;
    suite_ = nullptr;
  }

  static ScreeningStats RunModel(bool use_reference, int threads,
                                 MetricsRegistry* metrics = nullptr) {
    ScreeningPipeline pipeline(suite_);
    ScreeningConfig config;
    config.threads = threads;
    config.use_reference_model = use_reference;
    config.metrics = metrics;
    return pipeline.Run(*fleet_, config);
  }

  static void ExpectIdentical(const ScreeningStats& cached, const ScreeningStats& reference) {
    EXPECT_EQ(cached.tested, reference.tested);
    EXPECT_EQ(cached.faulty, reference.faulty);
    EXPECT_EQ(cached.detected_by_stage, reference.detected_by_stage);
    EXPECT_EQ(cached.tested_by_arch, reference.tested_by_arch);
    EXPECT_EQ(cached.detected_by_arch, reference.detected_by_arch);
    ASSERT_EQ(cached.detections.size(), reference.detections.size());
    for (size_t i = 0; i < cached.detections.size(); ++i) {
      const ProcessorOutcome& c = cached.detections[i];
      const ProcessorOutcome& r = reference.detections[i];
      EXPECT_EQ(c.serial, r.serial) << "detection " << i;
      EXPECT_EQ(c.arch_index, r.arch_index) << "detection " << i;
      EXPECT_EQ(c.detected, r.detected) << "detection " << i;
      EXPECT_EQ(c.stage, r.stage) << "detection " << i;
      // Bitwise, not EXPECT_DOUBLE_EQ: the cached path must reproduce the reference's
      // floating-point rounding exactly, not merely approximately.
      EXPECT_EQ(std::memcmp(&c.month, &r.month, sizeof(double)), 0)
          << "detection " << i << " month " << c.month << " vs " << r.month;
    }
  }

  static FleetPopulation* fleet_;
  static TestSuite* suite_;
};

FleetPopulation* ScreeningModelTest::fleet_ = nullptr;
TestSuite* ScreeningModelTest::suite_ = nullptr;

TEST_F(ScreeningModelTest, CachedMatchesReferenceAtOneThread) {
  ExpectIdentical(RunModel(false, 1), RunModel(true, 1));
}

TEST_F(ScreeningModelTest, CachedMatchesReferenceAtTwoThreads) {
  ExpectIdentical(RunModel(false, 2), RunModel(true, 2));
}

TEST_F(ScreeningModelTest, CachedMatchesReferenceAtEightThreads) {
  ExpectIdentical(RunModel(false, 8), RunModel(true, 8));
}

TEST_F(ScreeningModelTest, CachedIsThreadCountInvariant) {
  // The cached fast path skips clean processors outright; that must not perturb the
  // shard-order merge that makes stats thread-count invariant.
  const ScreeningStats one = RunModel(false, 1);
  ExpectIdentical(RunModel(false, 2), one);
  ExpectIdentical(RunModel(false, 8), one);
  // And both models agree across thread counts, not just within one.
  ExpectIdentical(one, RunModel(true, 8));
}

TEST_F(ScreeningModelTest, MetricsSnapshotsIdenticalAcrossModels) {
  // The observable metric stream (sans wall-clock timers) is part of the contract too.
  const auto snapshot_json = [](bool use_reference, int threads) {
    MetricsRegistry registry;
    (void)RunModel(use_reference, threads, &registry);
    std::ostringstream out;
    WriteMetricsJson(out, registry.Snapshot(), /*include_timers=*/false);
    return out.str();
  };
  const std::string cached = snapshot_json(false, 1);
  EXPECT_EQ(cached, snapshot_json(true, 1));
  EXPECT_EQ(cached, snapshot_json(false, 8));
  EXPECT_NE(cached.find("screening.tested"), std::string::npos);
}

TEST_F(ScreeningModelTest, FastPathActuallyDetects) {
  // Guard against the equivalence holding vacuously (nothing detected at all).
  const ScreeningStats stats = RunModel(false, 1);
  EXPECT_EQ(stats.tested, kFleetSize);
  EXPECT_GT(stats.faulty, 0u);
  EXPECT_GT(stats.total_detected(), 0u);
  EXPECT_FALSE(stats.detections.empty());
}

}  // namespace
}  // namespace sdc
