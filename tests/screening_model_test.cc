// Equivalence suite for the memoized detection model (docs/performance.md): the default
// cached screening path must be byte-identical -- every counter, every detection in
// order, detection months compared bitwise -- to the retained pre-memoization reference
// implementation (ScreeningConfig::use_reference_model) at several thread counts. Any
// divergence means the memoization changed the model or the RNG draw order, both of
// which break the determinism contract in docs/parallelism.md.

#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/fleet/pipeline.h"
#include "src/fleet/population.h"
#include "src/report/exporters.h"
#include "src/telemetry/metrics.h"

namespace sdc {
namespace {

constexpr uint64_t kFleetSize = 250000;

class ScreeningModelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    PopulationConfig config;
    config.processor_count = kFleetSize;
    config.seed = 20260805;
    fleet_ = new FleetPopulation(FleetPopulation::Generate(config));
    suite_ = new TestSuite(TestSuite::BuildFull());
  }
  static void TearDownTestSuite() {
    delete fleet_;
    delete suite_;
    fleet_ = nullptr;
    suite_ = nullptr;
  }

  static ScreeningStats RunModel(bool use_reference, int threads,
                                 MetricsRegistry* metrics = nullptr) {
    ScreeningPipeline pipeline(suite_);
    ScreeningConfig config;
    config.threads = threads;
    config.use_reference_model = use_reference;
    config.metrics = metrics;
    return pipeline.Run(*fleet_, config);
  }

  static void ExpectIdentical(const ScreeningStats& cached, const ScreeningStats& reference) {
    EXPECT_EQ(cached.tested, reference.tested);
    EXPECT_EQ(cached.faulty, reference.faulty);
    EXPECT_EQ(cached.detected_by_stage, reference.detected_by_stage);
    EXPECT_EQ(cached.tested_by_arch, reference.tested_by_arch);
    EXPECT_EQ(cached.detected_by_arch, reference.detected_by_arch);
    ASSERT_EQ(cached.detections.size(), reference.detections.size());
    for (size_t i = 0; i < cached.detections.size(); ++i) {
      const ProcessorOutcome& c = cached.detections[i];
      const ProcessorOutcome& r = reference.detections[i];
      EXPECT_EQ(c.serial, r.serial) << "detection " << i;
      EXPECT_EQ(c.arch_index, r.arch_index) << "detection " << i;
      EXPECT_EQ(c.detected, r.detected) << "detection " << i;
      EXPECT_EQ(c.stage, r.stage) << "detection " << i;
      // Bitwise, not EXPECT_DOUBLE_EQ: the cached path must reproduce the reference's
      // floating-point rounding exactly, not merely approximately.
      EXPECT_EQ(std::memcmp(&c.month, &r.month, sizeof(double)), 0)
          << "detection " << i << " month " << c.month << " vs " << r.month;
    }
  }

  static FleetPopulation* fleet_;
  static TestSuite* suite_;
};

FleetPopulation* ScreeningModelTest::fleet_ = nullptr;
TestSuite* ScreeningModelTest::suite_ = nullptr;

TEST_F(ScreeningModelTest, CachedMatchesReferenceAtOneThread) {
  ExpectIdentical(RunModel(false, 1), RunModel(true, 1));
}

TEST_F(ScreeningModelTest, CachedMatchesReferenceAtTwoThreads) {
  ExpectIdentical(RunModel(false, 2), RunModel(true, 2));
}

TEST_F(ScreeningModelTest, CachedMatchesReferenceAtEightThreads) {
  ExpectIdentical(RunModel(false, 8), RunModel(true, 8));
}

TEST_F(ScreeningModelTest, CachedIsThreadCountInvariant) {
  // The cached fast path skips clean processors outright; that must not perturb the
  // shard-order merge that makes stats thread-count invariant.
  const ScreeningStats one = RunModel(false, 1);
  ExpectIdentical(RunModel(false, 2), one);
  ExpectIdentical(RunModel(false, 8), one);
  // And both models agree across thread counts, not just within one.
  ExpectIdentical(one, RunModel(true, 8));
}

TEST_F(ScreeningModelTest, MetricsSnapshotsIdenticalAcrossModels) {
  // The observable metric stream (sans wall-clock timers) is part of the contract too.
  const auto snapshot_json = [](bool use_reference, int threads) {
    MetricsRegistry registry;
    (void)RunModel(use_reference, threads, &registry);
    std::ostringstream out;
    WriteMetricsJson(out, registry.Snapshot(), /*include_timers=*/false);
    return out.str();
  };
  const std::string cached = snapshot_json(false, 1);
  EXPECT_EQ(cached, snapshot_json(true, 1));
  EXPECT_EQ(cached, snapshot_json(false, 8));
  EXPECT_NE(cached.find("screening.tested"), std::string::npos);
}

TEST_F(ScreeningModelTest, FastPathActuallyDetects) {
  // Guard against the equivalence holding vacuously (nothing detected at all).
  const ScreeningStats stats = RunModel(false, 1);
  EXPECT_EQ(stats.tested, kFleetSize);
  EXPECT_GT(stats.faulty, 0u);
  EXPECT_GT(stats.total_detected(), 0u);
  EXPECT_FALSE(stats.detections.empty());
}

// ----- batched multi-scenario engine (ScreeningPipeline::RunBatch) ------------------
//
// The contract (docs/performance.md): every slot of a batched run is byte-identical to
// running that scenario alone -- scenario k draws only from Rng(seed_k).Fork(shard), so
// sharing the clean-path histogram and the MatchingTestcases memo across scenarios must
// not move a bit.

// K scenarios with distinct seeds and cadences (the spread the bench uses too), so the
// batch cannot pass by accidentally computing one scenario K times.
ScenarioBatch MakeBatch(int k_count, int threads, bool use_reference) {
  static constexpr double kPeriods[] = {3.0, 1.0, 2.0, 6.0};
  ScenarioBatch batch;
  batch.threads = threads;
  for (int k = 0; k < k_count; ++k) {
    ScreeningConfig config;
    config.seed = 77 + static_cast<uint64_t>(k);
    config.regular_period_months = kPeriods[k % 4];
    config.use_reference_model = use_reference;
    batch.scenarios.push_back(config);
  }
  return batch;
}

class ScreeningBatchTest : public ScreeningModelTest {
 protected:
  static void ExpectBatchMatchesIndependent(int k_count, int threads,
                                            bool use_reference) {
    ScreeningPipeline pipeline(suite_);
    const ScenarioBatch batch = MakeBatch(k_count, threads, use_reference);
    const std::vector<ScreeningStats> batched = pipeline.RunBatch(*fleet_, batch);
    ASSERT_EQ(batched.size(), batch.scenarios.size());
    for (int k = 0; k < k_count; ++k) {
      ScreeningConfig independent = batch.scenarios[static_cast<size_t>(k)];
      independent.threads = threads;
      SCOPED_TRACE("scenario " + std::to_string(k));
      ExpectIdentical(batched[static_cast<size_t>(k)], pipeline.Run(*fleet_, independent));
    }
  }
};

TEST_F(ScreeningBatchTest, BatchedMatchesIndependentAtOneThread) {
  ExpectBatchMatchesIndependent(8, 1, /*use_reference=*/false);
}

TEST_F(ScreeningBatchTest, BatchedMatchesIndependentAtTwoThreads) {
  ExpectBatchMatchesIndependent(8, 2, /*use_reference=*/false);
}

TEST_F(ScreeningBatchTest, BatchedMatchesIndependentAtEightThreads) {
  ExpectBatchMatchesIndependent(8, 8, /*use_reference=*/false);
}

TEST_F(ScreeningBatchTest, BatchedReferenceModelMatchesIndependent) {
  // Reference-model scenarios take the per-scenario fallback inside the batch kernel;
  // that path must be the same bits too. Small K: the reference model is slow.
  ExpectBatchMatchesIndependent(2, 2, /*use_reference=*/true);
}

TEST_F(ScreeningBatchTest, MixedModelBatchMatchesIndependent) {
  // Cached and reference scenarios in ONE batch: the cached slots ride the fused loop
  // while the reference slot replays per scenario, and each must match its solo run.
  ScreeningPipeline pipeline(suite_);
  ScenarioBatch batch = MakeBatch(3, 2, /*use_reference=*/false);
  batch.scenarios[1].use_reference_model = true;
  const std::vector<ScreeningStats> batched = pipeline.RunBatch(*fleet_, batch);
  ASSERT_EQ(batched.size(), 3u);
  for (size_t k = 0; k < batch.scenarios.size(); ++k) {
    ScreeningConfig independent = batch.scenarios[k];
    independent.threads = 2;
    SCOPED_TRACE("scenario " + std::to_string(k));
    ExpectIdentical(batched[k], pipeline.Run(*fleet_, independent));
  }
}

TEST_F(ScreeningBatchTest, DistinctStageParamsBatchMatchesIndependent) {
  // Scenarios with bit-identical stage parameters share one survive-term table per
  // faulty part; scenarios whose parameters differ must land in their own group and
  // still match their solo runs bitwise. Three groups here: {0, 2} (default stages),
  // {1} (hotter re-install), {3} (weaker factory catch).
  ScreeningPipeline pipeline(suite_);
  ScenarioBatch batch = MakeBatch(4, 2, /*use_reference=*/false);
  batch.scenarios[1].stages[2].temperature_celsius = 72.0;
  batch.scenarios[3].stages[0].catch_factor = 0.05;
  const std::vector<ScreeningStats> batched = pipeline.RunBatch(*fleet_, batch);
  ASSERT_EQ(batched.size(), 4u);
  for (size_t k = 0; k < batch.scenarios.size(); ++k) {
    ScreeningConfig independent = batch.scenarios[k];
    independent.threads = 2;
    SCOPED_TRACE("scenario " + std::to_string(k));
    ExpectIdentical(batched[k], pipeline.Run(*fleet_, independent));
  }
}

TEST_F(ScreeningBatchTest, BatchIsThreadCountInvariant) {
  ScreeningPipeline pipeline(suite_);
  const std::vector<ScreeningStats> one =
      pipeline.RunBatch(*fleet_, MakeBatch(4, 1, false));
  const std::vector<ScreeningStats> eight =
      pipeline.RunBatch(*fleet_, MakeBatch(4, 8, false));
  ASSERT_EQ(one.size(), eight.size());
  for (size_t k = 0; k < one.size(); ++k) {
    SCOPED_TRACE("scenario " + std::to_string(k));
    ExpectIdentical(eight[k], one[k]);
  }
}

TEST_F(ScreeningBatchTest, ScenariosActuallyDiffer) {
  // Guard against the equivalence holding because every slot carries the same bits: the
  // seeds differ, so the detection sets must differ somewhere.
  ScreeningPipeline pipeline(suite_);
  const std::vector<ScreeningStats> batched =
      pipeline.RunBatch(*fleet_, MakeBatch(4, 2, false));
  ASSERT_EQ(batched.size(), 4u);
  bool any_difference = false;
  for (size_t k = 1; k < batched.size(); ++k) {
    EXPECT_EQ(batched[k].tested, kFleetSize);
    EXPECT_GT(batched[k].total_detected(), 0u);
    if (batched[k].detections.size() != batched[0].detections.size()) {
      any_difference = true;
      continue;
    }
    for (size_t i = 0; i < batched[k].detections.size(); ++i) {
      if (batched[k].detections[i].serial != batched[0].detections[i].serial ||
          batched[k].detections[i].stage != batched[0].detections[i].stage) {
        any_difference = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_difference) << "all scenarios produced identical detections";
}

TEST_F(ScreeningBatchTest, EmptyBatchReturnsNoStats) {
  ScreeningPipeline pipeline(suite_);
  EXPECT_TRUE(pipeline.RunBatch(*fleet_, ScenarioBatch{}).empty());
}

TEST_F(ScreeningBatchTest, PerScenarioMetricsMatchIndependentRuns) {
  // Each scenario's metric sink must see exactly the deltas its independent run records
  // (sans wall-clock timers) -- not a sum over the batch.
  ScreeningPipeline pipeline(suite_);
  ScenarioBatch batch = MakeBatch(3, 2, false);
  std::vector<MetricsRegistry> batch_registries(batch.scenarios.size());
  for (size_t k = 0; k < batch.scenarios.size(); ++k) {
    batch.scenarios[k].metrics = &batch_registries[k];
  }
  (void)pipeline.RunBatch(*fleet_, batch);
  for (size_t k = 0; k < batch.scenarios.size(); ++k) {
    MetricsRegistry independent_registry;
    ScreeningConfig independent = batch.scenarios[k];
    independent.threads = 2;
    independent.metrics = &independent_registry;
    (void)pipeline.Run(*fleet_, independent);
    std::ostringstream batched_json;
    std::ostringstream independent_json;
    WriteMetricsJson(batched_json, batch_registries[k].Snapshot(),
                     /*include_timers=*/false);
    WriteMetricsJson(independent_json, independent_registry.Snapshot(),
                     /*include_timers=*/false);
    EXPECT_EQ(batched_json.str(), independent_json.str()) << "scenario " << k;
  }
}

}  // namespace
}  // namespace sdc
