// Tests for src/analysis: bitflip statistics, precision losses, pattern mining,
// reproducibility measurement, temperature regression, and suspect-instruction ranking.

#include <cmath>

#include <gtest/gtest.h>

#include "src/analysis/bitflip.h"
#include "src/analysis/patterns.h"
#include "src/analysis/repro.h"
#include "src/fault/catalog.h"

namespace sdc {
namespace {

SdcRecord MakeRecord(DataType type, const Word128& expected, const Word128& actual,
                     const std::string& testcase_id = "tc", int pcore = 0) {
  SdcRecord record;
  record.testcase_id = testcase_id;
  record.cpu_id = "X";
  record.pcore = pcore;
  record.sdc_type = SdcType::kComputation;
  record.type = type;
  record.expected = expected;
  record.actual = actual;
  return record;
}

TEST(BitflipTest, CountsPositionsAndDirections) {
  std::vector<SdcRecord> records;
  // 0 -> 1 at bit 3; 1 -> 0 at bit 5.
  Word128 expected = BitsOfInt32(0b100000);
  Word128 actual = BitsOfInt32(0b001000);
  records.push_back(MakeRecord(DataType::kInt32, expected, actual));
  const BitflipStats stats = AnalyzeBitflips(records, DataType::kInt32);
  EXPECT_EQ(stats.record_count, 1u);
  EXPECT_EQ(stats.total_flips, 2u);
  EXPECT_EQ(stats.zero_to_one[3], 1u);
  EXPECT_EQ(stats.one_to_zero[5], 1u);
  EXPECT_DOUBLE_EQ(stats.ZeroToOneFraction(), 0.5);
  EXPECT_DOUBLE_EQ(stats.FractionAt(3, true), 0.5);
}

TEST(BitflipTest, FiltersByType) {
  std::vector<SdcRecord> records;
  records.push_back(MakeRecord(DataType::kInt32, BitsOfInt32(0), BitsOfInt32(1)));
  records.push_back(MakeRecord(DataType::kFloat32, BitsOfFloat(1.0f),
                               BitsOfFloat(1.0000001f)));
  EXPECT_EQ(AnalyzeBitflips(records, DataType::kInt32).record_count, 1u);
  EXPECT_EQ(AnalyzeBitflips(records, DataType::kFloat32).record_count, 1u);
  EXPECT_EQ(AnalyzeBitflips(records, DataType::kFloat64).record_count, 0u);
}

TEST(BitflipTest, FractionPartShare) {
  std::vector<SdcRecord> records;
  Word128 expected = BitsOfDouble(1.5);
  Word128 fraction_flip = expected;
  fraction_flip.FlipBit(10);  // fraction
  Word128 exponent_flip = expected;
  exponent_flip.FlipBit(55);  // exponent
  records.push_back(MakeRecord(DataType::kFloat64, expected, fraction_flip));
  records.push_back(MakeRecord(DataType::kFloat64, expected, exponent_flip));
  const BitflipStats stats = AnalyzeBitflips(records, DataType::kFloat64);
  EXPECT_DOUBLE_EQ(stats.FractionPartShare(), 0.5);
}

TEST(BitflipTest, PrecisionLossesSkipInfinite) {
  std::vector<SdcRecord> records;
  records.push_back(MakeRecord(DataType::kInt32, BitsOfInt32(0), BitsOfInt32(8)));   // inf
  records.push_back(MakeRecord(DataType::kInt32, BitsOfInt32(100), BitsOfInt32(104)));
  const std::vector<double> losses = PrecisionLosses(records, DataType::kInt32);
  ASSERT_EQ(losses.size(), 1u);
  EXPECT_NEAR(losses[0], 0.04, 1e-12);
}

TEST(BitflipTest, FlipCountDistribution) {
  std::vector<SdcRecord> records;
  Word128 expected = BitsOfInt32(0);
  Word128 one = expected;
  one.FlipBit(1);
  Word128 two = expected;
  two.FlipBit(1);
  two.FlipBit(9);
  Word128 many = expected;
  many.FlipBit(1);
  many.FlipBit(9);
  many.FlipBit(17);
  records.push_back(MakeRecord(DataType::kInt32, expected, one));
  records.push_back(MakeRecord(DataType::kInt32, expected, one));
  records.push_back(MakeRecord(DataType::kInt32, expected, two));
  records.push_back(MakeRecord(DataType::kInt32, expected, many));
  const std::vector<double> distribution = FlipCountDistribution(records, DataType::kInt32);
  EXPECT_DOUBLE_EQ(distribution[0], 0.5);
  EXPECT_DOUBLE_EQ(distribution[1], 0.25);
  EXPECT_DOUBLE_EQ(distribution[2], 0.25);
}

TEST(PatternTest, MinesRepeatedMasks) {
  std::vector<SdcRecord> records;
  Word128 expected = BitsOfInt32(1000);
  Word128 pattern_mask;
  pattern_mask.SetBit(7, true);
  // 60 records with the fixed pattern, 40 with unique noise masks.
  for (int i = 0; i < 60; ++i) {
    records.push_back(MakeRecord(DataType::kInt32, expected, expected ^ pattern_mask));
  }
  for (int i = 0; i < 40; ++i) {
    Word128 noise;
    noise.SetBit(i % 30, true);
    noise.SetBit((i * 7 + 1) % 30, true);
    records.push_back(MakeRecord(DataType::kInt32, expected, expected ^ noise));
  }
  const PatternAnalysis analysis = MinePatterns(records, 0.05);
  EXPECT_EQ(analysis.record_count, 100u);
  ASSERT_FALSE(analysis.patterns.empty());
  EXPECT_EQ(analysis.patterns.front().mask, pattern_mask);
  EXPECT_NEAR(analysis.patterns.front().share, 0.6, 0.001);
  EXPECT_GE(analysis.patterned_record_fraction, 0.6);
}

TEST(PatternTest, ThresholdExcludesRareMasks) {
  std::vector<SdcRecord> records;
  Word128 expected = BitsOfInt32(0);
  for (int i = 0; i < 100; ++i) {
    Word128 mask;
    mask.SetBit(i % 25, true);  // each mask ~4% share
    records.push_back(MakeRecord(DataType::kInt32, expected, expected ^ mask));
  }
  const PatternAnalysis analysis = MinePatterns(records, 0.05);
  EXPECT_TRUE(analysis.patterns.empty());
  EXPECT_DOUBLE_EQ(analysis.patterned_record_fraction, 0.0);
}

TEST(PatternTest, FilterSettingSelectsTestcaseAndCore) {
  std::vector<SdcRecord> records;
  records.push_back(MakeRecord(DataType::kInt32, BitsOfInt32(0), BitsOfInt32(1), "a", 0));
  records.push_back(MakeRecord(DataType::kInt32, BitsOfInt32(0), BitsOfInt32(1), "a", 1));
  records.push_back(MakeRecord(DataType::kInt32, BitsOfInt32(0), BitsOfInt32(1), "b", 0));
  EXPECT_EQ(FilterSetting(records, "a").size(), 2u);
  EXPECT_EQ(FilterSetting(records, "a", 1).size(), 1u);
  EXPECT_EQ(FilterSetting(records, "c").size(), 0u);
}

TEST(ReproTest, FitLogFrequencyRecoversSlope) {
  std::vector<TemperaturePoint> points;
  for (double temperature = 50.0; temperature <= 70.0; temperature += 2.0) {
    TemperaturePoint point;
    point.temperature_celsius = temperature;
    point.frequency_per_minute = std::pow(10.0, 0.15 * (temperature - 50.0) - 2.0);
    points.push_back(point);
  }
  const LinearFit fit = FitLogFrequencyVsTemperature(points);
  EXPECT_NEAR(fit.slope, 0.15, 1e-9);
  EXPECT_NEAR(fit.r, 1.0, 1e-9);
}

TEST(ReproTest, FitIgnoresZeroFrequencies) {
  std::vector<TemperaturePoint> points = {{40.0, 0.0}, {50.0, 1.0}, {60.0, 10.0}};
  const LinearFit fit = FitLogFrequencyVsTemperature(points);
  EXPECT_NEAR(fit.slope, 0.1, 1e-9);
}

TEST(ReproTest, CollectTriggerPointsCoversCatalogDefects) {
  const auto catalog = StudyCatalog();
  const std::vector<TriggerPoint> points = CollectTriggerPoints(catalog);
  size_t defect_count = 0;
  for (const auto& info : catalog) {
    defect_count += info.defects.size();
  }
  EXPECT_EQ(points.size(), defect_count);
  for (const TriggerPoint& point : points) {
    EXPECT_GT(point.frequency_per_minute, 0.0) << point.defect_id;
    EXPECT_GE(point.min_trigger_celsius, 35.0);
    EXPECT_LE(point.min_trigger_celsius, 80.0);
  }
}

TEST(ReproTest, TriggerPointsReproduceFig9Correlation) {
  const std::vector<TriggerPoint> points = CollectTriggerPoints(StudyCatalog());
  std::vector<double> triggers;
  std::vector<double> log_frequencies;
  for (const TriggerPoint& point : points) {
    triggers.push_back(point.min_trigger_celsius);
    log_frequencies.push_back(std::log10(point.frequency_per_minute));
  }
  // The paper reports r = -0.8272.
  EXPECT_LT(PearsonCorrelation(triggers, log_frequencies), -0.55);
}

TEST(ReproTest, SuspectRankingIdentifiesDefectiveOp) {
  RunReport report;
  // Four testcases: two use arctan (both fail), two do not (both pass).
  for (int i = 0; i < 4; ++i) {
    TestcaseResult result;
    result.testcase_id = "case" + std::to_string(i);
    result.duration_seconds = 60.0;
    const bool uses_arctan = i < 2;
    result.errors = uses_arctan ? 10 : 0;
    result.op_histogram[static_cast<int>(OpKind::kFpArctan)] = uses_arctan ? 1000 : 0;
    result.op_histogram[static_cast<int>(OpKind::kFpAdd)] = 1000;  // everyone uses adds
    report.results.push_back(result);
  }
  const std::vector<SuspectScore> scores = RankSuspectOps(report);
  ASSERT_FALSE(scores.empty());
  EXPECT_EQ(scores.front().op, OpKind::kFpArctan);
  EXPECT_DOUBLE_EQ(scores.front().failed_usage, 1.0);
  EXPECT_DOUBLE_EQ(scores.front().passed_usage, 0.0);
}

TEST(ReproTest, MeasuredFrequencyGrowsWithTemperature) {
  // End-to-end: pin temperatures and measure a catalog setting's frequency; hotter must be
  // (much) more frequent, as in Figure 8.
  TestSuite suite = TestSuite::BuildFull();
  TestFramework framework(&suite);
  FaultyMachine machine(FindInCatalog("FPU2"), 17);
  const int index = suite.IndexOf("lib.math.fp_arctan.f64.n256");
  ASSERT_GE(index, 0);
  const int pcore = FindInCatalog("FPU2").defects.front().affected_pcores.front();
  const double cold = MeasureOccurrenceFrequency(machine, framework,
                                                 static_cast<size_t>(index), pcore, 47.0,
                                                 600.0, 4);
  const double hot = MeasureOccurrenceFrequency(machine, framework,
                                                static_cast<size_t>(index), pcore, 56.0,
                                                600.0, 4);
  EXPECT_EQ(cold, 0.0);  // below the 48C trigger
  EXPECT_GT(hot, 0.0);
}

}  // namespace
}  // namespace sdc
