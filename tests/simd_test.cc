// Tests for the portable SIMD byte-counting kernel (src/common/simd.h) and its wiring
// into the screening clean path (docs/performance.md). The contract is exact integer
// equality: every dispatch level -- scalar, SSE2, AVX2, NEON -- produces identical
// counts on every input shape (unaligned begins, tails shorter than a vector, the
// 255-block accumulator flush boundary), and pinning the screening config or the
// SDC_SIMD environment variable to the scalar fallback must not move a bit of fleet
// output, even on adversarial fleets (all-faulty, zero-faulty, sizes that straddle
// shard boundaries).

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/simd.h"
#include "src/fleet/pipeline.h"
#include "src/fleet/population.h"

namespace sdc {
namespace {

// Deterministic byte column with values in [0, bucket_count).
std::vector<uint8_t> MakeColumn(size_t size, int bucket_count, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> data(size);
  for (size_t i = 0; i < size; ++i) {
    data[i] = static_cast<uint8_t>(rng.NextBelow(static_cast<uint64_t>(bucket_count)));
  }
  return data;
}

std::vector<uint64_t> NaiveCounts(const uint8_t* data, size_t size, int bucket_count) {
  std::vector<uint64_t> counts(static_cast<size_t>(bucket_count), 0);
  for (size_t i = 0; i < size; ++i) {
    ++counts[data[i]];
  }
  return counts;
}

std::vector<uint64_t> KernelCounts(const uint8_t* data, size_t size, int bucket_count,
                                   SimdLevel level) {
  std::vector<uint64_t> counts(static_cast<size_t>(bucket_count), 0);
  CountBytesByValue(data, size, bucket_count, counts.data(), level);
  return counts;
}

// Every level this build can execute, scalar always included.
std::vector<SimdLevel> SupportedLevels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  const SimdLevel best = BestSupportedSimdLevel();
  if (best == SimdLevel::kAVX2) {
    levels.push_back(SimdLevel::kSSE2);
  }
  if (best != SimdLevel::kScalar) {
    levels.push_back(best);
  }
  return levels;
}

TEST(SimdKernelTest, AllLevelsMatchNaiveOnAdversarialShapes) {
  // Sizes bracketing every special case: empty, sub-vector tails, exact vector
  // multiples, the 255-iteration accumulator flush for 16- and 32-byte lanes
  // (255*16 = 4080, 255*32 = 8160), and a large non-round size.
  const size_t sizes[] = {0,    1,    7,    15,   16,   17,   31,   32,  33,
                          255,  256,  4079, 4080, 4081, 8159, 8160, 8161, 100003};
  for (const int bucket_count : {1, 4, 9, 16}) {
    for (const size_t size : sizes) {
      const std::vector<uint8_t> column =
          MakeColumn(size, bucket_count, /*seed=*/size * 131 + bucket_count);
      const std::vector<uint64_t> expected =
          NaiveCounts(column.data(), size, bucket_count);
      for (const SimdLevel level : SupportedLevels()) {
        EXPECT_EQ(KernelCounts(column.data(), size, bucket_count, level), expected)
            << "size=" << size << " buckets=" << bucket_count
            << " level=" << SimdLevelName(level);
      }
    }
  }
}

TEST(SimdKernelTest, UnalignedBeginsCountIdentically) {
  // The screening kernel hands the vector path interior pointers (view.begin is rarely
  // a multiple of 16), so every misalignment must count like the aligned scan.
  const std::vector<uint8_t> column = MakeColumn(9000, 9, /*seed=*/42);
  for (const size_t offset : {1, 3, 7, 13, 15, 17, 31}) {
    const uint8_t* begin = column.data() + offset;
    const size_t size = column.size() - offset - 5;  // unaligned tail too
    const std::vector<uint64_t> expected = NaiveCounts(begin, size, 9);
    for (const SimdLevel level : SupportedLevels()) {
      EXPECT_EQ(KernelCounts(begin, size, 9, level), expected)
          << "offset=" << offset << " level=" << SimdLevelName(level);
    }
  }
}

TEST(SimdKernelTest, AccumulatesIntoExistingCounts) {
  // CountBytesByValue adds; the screening loop relies on that when one stats object
  // accumulates several consecutive shards.
  const std::vector<uint8_t> column = MakeColumn(1000, 4, /*seed=*/7);
  for (const SimdLevel level : SupportedLevels()) {
    std::vector<uint64_t> counts = {100, 200, 300, 400};
    CountBytesByValue(column.data(), column.size(), 4, counts.data(), level);
    const std::vector<uint64_t> fresh = NaiveCounts(column.data(), column.size(), 4);
    for (size_t v = 0; v < 4; ++v) {
      EXPECT_EQ(counts[v], fresh[v] + 100 * (v + 1)) << "bucket " << v;
    }
  }
}

// Reference implementation of ClassifyDrawPairs' contract, written independently of the
// kernel's branchless form.
size_t NaiveClassify(const uint64_t* draws, size_t count, const DrawClassifyTables& tables,
                     uint8_t* class_out, uint64_t* faulty_bits) {
  std::memset(faulty_bits, 0, ((count + 63) / 64) * sizeof(uint64_t));
  size_t hits = 0;
  for (size_t i = 0; i < count; ++i) {
    const uint64_t a = draws[2 * i] >> 11;
    int cls = 0;
    while (cls < tables.class_count - 1 && tables.cdf_bounds_u53[cls] <= a) {
      ++cls;
    }
    class_out[i] = static_cast<uint8_t>(cls);
    if ((draws[2 * i + 1] >> 11) < tables.fault_thresholds_u53[cls]) {
      faulty_bits[i / 64] |= uint64_t{1} << (i % 64);
      ++hits;
    }
  }
  return hits;
}

DrawClassifyTables MakeTables(int class_count, std::span<const uint64_t> bounds,
                              std::span<const uint64_t> thresholds) {
  DrawClassifyTables tables;
  tables.class_count = class_count;
  for (int i = 0; i < kMaxClassifyClasses - 1; ++i) {
    tables.cdf_bounds_u53[i] =
        i < static_cast<int>(bounds.size()) ? bounds[static_cast<size_t>(i)] : kClassifyNever;
  }
  for (int i = 0; i < kMaxClassifyClasses; ++i) {
    tables.fault_thresholds_u53[i] =
        i < static_cast<int>(thresholds.size()) ? thresholds[static_cast<size_t>(i)] : 0;
  }
  return tables;
}

TEST(SimdClassifyTest, AllLevelsMatchNaiveOnAdversarialShapes) {
  // Counts bracketing the vector strides (4 pairs per AVX2 iteration, 2 per NEON) and
  // the 64-pair faulty_bits word boundary.
  const size_t counts[] = {0, 1, 2, 3, 4, 5, 7, 8, 63, 64, 65, 127, 128, 129, 511, 4099};
  const uint64_t b = uint64_t{1} << 50;
  const std::vector<uint64_t> bounds = {b, 2 * b, 3 * b, 5 * b, 5 * b,  // duplicate: empty class
                                        6 * b, 7 * b, 7 * b + 1};
  // Mix of never (0), always (kClassifyNever covers all u53), and interior thresholds.
  const std::vector<uint64_t> thresholds = {0, uint64_t{1} << 40, kClassifyNever,
                                            1, b, 0, uint64_t{1} << 52, 3, b / 3};
  const DrawClassifyTables tables = MakeTables(9, bounds, thresholds);
  for (const size_t count : counts) {
    Rng rng(count * 977 + 5);
    std::vector<uint64_t> draws(2 * count);
    rng.FillBlock(std::span<uint64_t>(draws));
    std::vector<uint8_t> expected_class(count + 1, 0xee);
    std::vector<uint64_t> expected_bits((count + 63) / 64 + 1, 0xeeee);
    const size_t expected_hits = NaiveClassify(draws.data(), count, tables,
                                               expected_class.data(), expected_bits.data());
    for (const SimdLevel level : SupportedLevels()) {
      std::vector<uint8_t> actual_class(count + 1, 0xee);
      std::vector<uint64_t> actual_bits((count + 63) / 64 + 1, 0xeeee);
      actual_bits.back() = expected_bits.back();  // kernel only touches (count+63)/64 words
      const size_t hits = ClassifyDrawPairs(draws.data(), count, tables,
                                            actual_class.data(), actual_bits.data(), level);
      EXPECT_EQ(hits, expected_hits)
          << "count=" << count << " level=" << SimdLevelName(level);
      EXPECT_EQ(actual_class, expected_class)
          << "count=" << count << " level=" << SimdLevelName(level);
      EXPECT_EQ(actual_bits, expected_bits)
          << "count=" << count << " level=" << SimdLevelName(level);
    }
  }
}

TEST(SimdClassifyTest, BoundaryDrawsClassifyExactly) {
  // Draws landing exactly on a bound or threshold are the cases a sampled test misses:
  // bound - 1 stays below, bound crosses; threshold - 1 is faulty, threshold is not.
  const uint64_t bound = 0x123456789abcdull;
  const uint64_t threshold = 0x000fedcba9876ull;
  const DrawClassifyTables tables =
      MakeTables(2, std::vector<uint64_t>{bound},
                 std::vector<uint64_t>{threshold, threshold});
  const uint64_t pairs[][2] = {
      {(bound - 1) << 11, (threshold - 1) << 11},  // class 0, faulty
      {bound << 11, threshold << 11},              // class 1, clean
      {0, 0},                                      // class 0, faulty iff threshold > 0
      {((uint64_t{1} << 53) - 1) << 11, ((uint64_t{1} << 53) - 1) << 11},  // max u53
  };
  for (const SimdLevel level : SupportedLevels()) {
    for (const auto& pair : pairs) {
      // Replicate one pair across a full vector stride so the vector lanes (not the
      // scalar tail) classify it.
      uint64_t draws[8];
      for (int i = 0; i < 4; ++i) {
        draws[2 * i] = pair[0];
        draws[2 * i + 1] = pair[1];
      }
      uint8_t expected_class[5];
      uint64_t expected_bits[2];
      const size_t expected_hits =
          NaiveClassify(draws, 4, tables, expected_class, expected_bits);
      uint8_t actual_class[5];
      uint64_t actual_bits[2];
      const size_t hits =
          ClassifyDrawPairs(draws, 4, tables, actual_class, actual_bits, level);
      EXPECT_EQ(hits, expected_hits) << SimdLevelName(level);
      EXPECT_EQ(std::memcmp(actual_class, expected_class, 4), 0) << SimdLevelName(level);
      EXPECT_EQ(actual_bits[0], expected_bits[0]) << SimdLevelName(level);
    }
  }
}

TEST(SimdClassifyTest, SingleClassAndExtremes) {
  // class_count = 1 (no bounds consulted) with always/never thresholds.
  for (const uint64_t threshold : {uint64_t{0}, kClassifyNever}) {
    const DrawClassifyTables tables =
        MakeTables(1, {}, std::vector<uint64_t>{threshold});
    Rng rng(61);
    std::vector<uint64_t> draws(2 * 100);
    rng.FillBlock(std::span<uint64_t>(draws));
    for (const SimdLevel level : SupportedLevels()) {
      std::vector<uint8_t> classes(100);
      std::vector<uint64_t> bits(2);
      const size_t hits =
          ClassifyDrawPairs(draws.data(), 100, tables, classes.data(), bits.data(), level);
      EXPECT_EQ(hits, threshold == 0 ? 0u : 100u) << SimdLevelName(level);
      for (uint8_t cls : classes) {
        ASSERT_EQ(cls, 0);
      }
    }
  }
}

TEST(SimdLevelTest, NamesRoundTrip) {
  for (const SimdLevel level : {SimdLevel::kScalar, SimdLevel::kSSE2, SimdLevel::kAVX2,
                                SimdLevel::kNEON}) {
    EXPECT_EQ(ParseSimdLevel(SimdLevelName(level)), level);
  }
  EXPECT_EQ(ParseSimdLevel("auto"), SimdLevel::kAuto);
  EXPECT_EQ(ParseSimdLevel("bogus"), SimdLevel::kAuto);
  EXPECT_EQ(ParseSimdLevel(""), SimdLevel::kAuto);
}

TEST(SimdLevelTest, ResolveClampsToSupported) {
  // kAuto resolves to the best supported level; an explicit request the host cannot run
  // clamps down instead of dispatching an illegal instruction.
  const SimdLevel best = BestSupportedSimdLevel();
  EXPECT_EQ(ResolveSimdLevel(SimdLevel::kAuto), best);
  EXPECT_EQ(ResolveSimdLevel(SimdLevel::kScalar), SimdLevel::kScalar);
  EXPECT_EQ(ResolveSimdLevel(SimdLevel::kNEON) == SimdLevel::kNEON ||
                ResolveSimdLevel(SimdLevel::kNEON) == best,
            true);
}

TEST(SimdLevelTest, EnvironmentVariableForcesLevel) {
  // SDC_SIMD wins over the config request: the CI scalar leg and ad-hoc triage both
  // rely on flipping the dispatch without a rebuild.
  ASSERT_EQ(setenv("SDC_SIMD", "scalar", /*overwrite=*/1), 0);
  EXPECT_EQ(ResolveSimdLevel(SimdLevel::kAuto), SimdLevel::kScalar);
  EXPECT_EQ(ResolveSimdLevel(BestSupportedSimdLevel()), SimdLevel::kScalar);
  ASSERT_EQ(setenv("SDC_SIMD", "auto", 1), 0);
  EXPECT_EQ(ResolveSimdLevel(SimdLevel::kScalar), BestSupportedSimdLevel());
  // Unrecognized values leave the request untouched rather than silently changing it.
  ASSERT_EQ(setenv("SDC_SIMD", "bogus", 1), 0);
  EXPECT_EQ(ResolveSimdLevel(SimdLevel::kScalar), SimdLevel::kScalar);
  ASSERT_EQ(unsetenv("SDC_SIMD"), 0);
}

// ----- screening integration: dispatch level must never move a bit ------------------

class SimdScreeningTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { suite_ = new TestSuite(TestSuite::BuildFull()); }
  static void TearDownTestSuite() {
    delete suite_;
    suite_ = nullptr;
  }

  static ScreeningStats Screen(const FleetPopulation& fleet, SimdLevel simd,
                               int threads = 2) {
    ScreeningPipeline pipeline(suite_);
    ScreeningConfig config;
    config.threads = threads;
    config.simd = simd;
    return pipeline.Run(fleet, config);
  }

  static void ExpectIdentical(const ScreeningStats& a, const ScreeningStats& b) {
    EXPECT_EQ(a.tested, b.tested);
    EXPECT_EQ(a.faulty, b.faulty);
    EXPECT_EQ(a.detected_by_stage, b.detected_by_stage);
    EXPECT_EQ(a.tested_by_arch, b.tested_by_arch);
    EXPECT_EQ(a.detected_by_arch, b.detected_by_arch);
    ASSERT_EQ(a.detections.size(), b.detections.size());
    for (size_t i = 0; i < a.detections.size(); ++i) {
      EXPECT_EQ(a.detections[i].serial, b.detections[i].serial) << "detection " << i;
      EXPECT_EQ(a.detections[i].stage, b.detections[i].stage) << "detection " << i;
      EXPECT_EQ(std::memcmp(&a.detections[i].month, &b.detections[i].month,
                            sizeof(double)),
                0)
          << "detection " << i;
    }
  }

  static TestSuite* suite_;
};

TestSuite* SimdScreeningTest::suite_ = nullptr;

TEST_F(SimdScreeningTest, ScalarAndVectorScreenIdentically) {
  // 4097 processors: spans two screening shards with a 1-processor tail, so the vector
  // path sees both a full unaligned column and a degenerate one.
  PopulationConfig config;
  config.processor_count = 4097;
  config.seed = 99;
  const FleetPopulation fleet = FleetPopulation::Generate(config);
  const ScreeningStats scalar = Screen(fleet, SimdLevel::kScalar);
  ExpectIdentical(Screen(fleet, SimdLevel::kAuto), scalar);
  for (const SimdLevel level : SupportedLevels()) {
    SCOPED_TRACE(SimdLevelName(level));
    ExpectIdentical(Screen(fleet, level), scalar);
  }
  EXPECT_EQ(scalar.tested, 4097u);
}

TEST_F(SimdScreeningTest, AllFaultyFleetScreensIdentically) {
  // detected_rate == detectability makes prevalence 1: every serial is faulty, so the
  // clean-path scan degenerates to nothing and the faulty loop dominates. The dispatch
  // level still must not matter.
  PopulationConfig config;
  config.processor_count = 20000;
  config.seed = 7;
  config.detected_rate.fill(config.detectability);
  const FleetPopulation fleet = FleetPopulation::Generate(config);
  const ScreeningStats scalar = Screen(fleet, SimdLevel::kScalar);
  EXPECT_EQ(scalar.faulty, 20000u);
  ExpectIdentical(Screen(fleet, SimdLevel::kAuto), scalar);
  EXPECT_GT(scalar.total_detected(), 0u);
}

TEST_F(SimdScreeningTest, ZeroFaultyFleetScreensIdentically) {
  // detected_rate == 0 makes every serial clean: the whole pass is the SIMD histogram.
  PopulationConfig config;
  config.processor_count = 20001;  // odd size: unaligned tail in every column
  config.seed = 7;
  config.detected_rate.fill(0.0);
  const FleetPopulation fleet = FleetPopulation::Generate(config);
  const ScreeningStats scalar = Screen(fleet, SimdLevel::kScalar);
  EXPECT_EQ(scalar.faulty, 0u);
  EXPECT_EQ(scalar.tested, 20001u);
  EXPECT_EQ(scalar.total_detected(), 0u);
  ExpectIdentical(Screen(fleet, SimdLevel::kAuto), scalar);
}

TEST_F(SimdScreeningTest, EnvOverrideForcesScalarInPipeline) {
  // With SDC_SIMD=scalar the auto-dispatched run must equal the explicit scalar run --
  // trivially bitwise, but this pins that the pipeline actually consults the resolver.
  PopulationConfig config;
  config.processor_count = 30000;
  config.seed = 13;
  const FleetPopulation fleet = FleetPopulation::Generate(config);
  const ScreeningStats baseline = Screen(fleet, SimdLevel::kAuto);
  ASSERT_EQ(setenv("SDC_SIMD", "scalar", 1), 0);
  const ScreeningStats forced = Screen(fleet, SimdLevel::kAuto);
  ASSERT_EQ(unsetenv("SDC_SIMD"), 0);
  ExpectIdentical(forced, baseline);
  EXPECT_GT(baseline.total_detected(), 0u);
}

TEST_F(SimdScreeningTest, BatchedScreenIgnoresDispatchLevelBitwise) {
  // The batched engine shares one histogram pass across scenarios; its level choice must
  // be invisible in the output too.
  PopulationConfig config;
  config.processor_count = 30000;
  config.seed = 21;
  const FleetPopulation fleet = FleetPopulation::Generate(config);
  ScreeningPipeline pipeline(suite_);
  const auto run_batch = [&](SimdLevel simd) {
    ScenarioBatch batch;
    batch.threads = 2;
    for (int k = 0; k < 3; ++k) {
      ScreeningConfig scenario;
      scenario.seed = 77 + static_cast<uint64_t>(k);
      scenario.simd = simd;
      batch.scenarios.push_back(scenario);
    }
    return pipeline.RunBatch(fleet, batch);
  };
  const std::vector<ScreeningStats> scalar = run_batch(SimdLevel::kScalar);
  const std::vector<ScreeningStats> automatic = run_batch(SimdLevel::kAuto);
  ASSERT_EQ(scalar.size(), automatic.size());
  for (size_t k = 0; k < scalar.size(); ++k) {
    SCOPED_TRACE("scenario " + std::to_string(k));
    ExpectIdentical(automatic[k], scalar[k]);
  }
}

}  // namespace
}  // namespace sdc
