// Tests for src/common/parallel.h and the determinism contract of the parallelized hot
// paths: fleet generation, fleet screening, and parallel plan execution must produce
// bit-identical results at any thread count (docs/parallelism.md).

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/parallel.h"
#include "src/fault/catalog.h"
#include "src/fleet/pipeline.h"
#include "src/fleet/population.h"
#include "src/report/exporters.h"
#include "src/telemetry/metrics.h"
#include "src/toolchain/framework.h"
#include "src/toolchain/registry.h"

namespace sdc {
namespace {

// --- ThreadPool primitives ---

TEST(ThreadPoolTest, ShardCountCeilDivides) {
  EXPECT_EQ(ThreadPool::ShardCountFor(0, 0, 10), 0u);
  EXPECT_EQ(ThreadPool::ShardCountFor(0, 1, 10), 1u);
  EXPECT_EQ(ThreadPool::ShardCountFor(0, 10, 10), 1u);
  EXPECT_EQ(ThreadPool::ShardCountFor(0, 11, 10), 2u);
  EXPECT_EQ(ThreadPool::ShardCountFor(5, 25, 10), 2u);
  EXPECT_EQ(ThreadPool::ShardCountFor(0, 7, 0), 7u);  // grain 0 clamps to 1
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (int threads : {1, 2, 4, 8}) {
    ThreadPool pool(threads);
    constexpr uint64_t kCount = 10007;  // prime: last shard is ragged
    std::vector<std::atomic<int>> hits(kCount);
    pool.ParallelFor(0, kCount, 64, [&](uint64_t shard, uint64_t begin, uint64_t end) {
      EXPECT_EQ(begin, shard * 64);
      EXPECT_LE(end, kCount);
      for (uint64_t i = begin; i < end; ++i) {
        hits[i].fetch_add(1, std::memory_order_relaxed);
      }
    });
    for (uint64_t i = 0; i < kCount; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ThreadPoolTest, ParallelMapReturnsResultsInShardOrder) {
  ThreadPool pool(4);
  const std::vector<uint64_t> results = pool.ParallelMap<uint64_t>(
      0, 1000, 10, [](uint64_t shard, uint64_t, uint64_t) { return shard * shard; });
  ASSERT_EQ(results.size(), 100u);
  for (uint64_t shard = 0; shard < results.size(); ++shard) {
    EXPECT_EQ(results[shard], shard * shard);
  }
}

TEST(ThreadPoolTest, ParallelReduceMergesInShardOrder) {
  // Merge order matters for the determinism contract: concatenation must reproduce the
  // serial sequence even when later shards finish first.
  for (int threads : {1, 3, 8}) {
    ThreadPool pool(threads);
    const std::vector<uint64_t> merged = pool.ParallelReduce<std::vector<uint64_t>>(
        0, 257, 16, {},
        [](uint64_t, uint64_t begin, uint64_t end) {
          std::vector<uint64_t> shard_values;
          for (uint64_t i = begin; i < end; ++i) {
            shard_values.push_back(i);
          }
          return shard_values;
        },
        [](std::vector<uint64_t>& total, const std::vector<uint64_t>& shard_values) {
          total.insert(total.end(), shard_values.begin(), shard_values.end());
        });
    ASSERT_EQ(merged.size(), 257u);
    for (uint64_t i = 0; i < merged.size(); ++i) {
      EXPECT_EQ(merged[i], i);
    }
  }
}

TEST(ThreadPoolTest, PoolIsReusableAcrossCalls) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<uint64_t> sum{0};
    pool.ParallelFor(0, 100, 7, [&](uint64_t, uint64_t begin, uint64_t end) {
      uint64_t local = 0;
      for (uint64_t i = begin; i < end; ++i) {
        local += i;
      }
      sum.fetch_add(local, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 4950u);
  }
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  for (int threads : {1, 4}) {
    ThreadPool pool(threads);
    EXPECT_THROW(
        pool.ParallelFor(0, 100, 1,
                         [](uint64_t shard, uint64_t, uint64_t) {
                           if (shard == 37) {
                             throw std::runtime_error("shard 37 failed");
                           }
                         }),
        std::runtime_error);
    // The pool survives a failed job.
    std::atomic<int> ran{0};
    pool.ParallelFor(0, 10, 1, [&](uint64_t, uint64_t, uint64_t) { ++ran; });
    EXPECT_EQ(ran.load(), 10);
  }
}

TEST(ThreadPoolTest, ResolveThreadCountHonorsEnvOverride) {
  ASSERT_EQ(setenv("SDC_THREADS", "3", 1), 0);
  EXPECT_EQ(ResolveThreadCount(8), 3);
  EXPECT_EQ(ResolveThreadCount(0), 3);
  ASSERT_EQ(setenv("SDC_THREADS", "0", 1), 0);
  EXPECT_EQ(ResolveThreadCount(5), HardwareThreads());
  ASSERT_EQ(setenv("SDC_THREADS", "garbage", 1), 0);
  EXPECT_EQ(ResolveThreadCount(5), 5);  // unparsable values are ignored
  ASSERT_EQ(unsetenv("SDC_THREADS"), 0);
  EXPECT_EQ(ResolveThreadCount(0), HardwareThreads());
  EXPECT_EQ(ResolveThreadCount(-2), 1);
  EXPECT_EQ(ResolveThreadCount(6), 6);
}

// --- Determinism across thread counts (the regression the refactor must never break) ---

bool SameProcessor(const FleetProcessorView& a, const FleetProcessorView& b) {
  if (a.serial != b.serial || a.arch_index != b.arch_index || a.faulty != b.faulty ||
      a.toolchain_detectable != b.toolchain_detectable ||
      a.defects.size() != b.defects.size()) {
    return false;
  }
  for (size_t i = 0; i < a.defects.size(); ++i) {
    const Defect& x = a.defects[i];
    const Defect& y = b.defects[i];
    if (x.id != y.id || x.feature != y.feature || x.affected_ops != y.affected_ops ||
        x.affected_types != y.affected_types || x.affected_pcores != y.affected_pcores ||
        x.base_log10_rate != y.base_log10_rate ||
        x.min_trigger_celsius != y.min_trigger_celsius ||
        x.onset_months != y.onset_months) {
      return false;
    }
  }
  return true;
}

TEST(ParallelDeterminismTest, GenerationIsThreadCountInvariant) {
  PopulationConfig config;
  config.processor_count = 50000;
  config.seed = 20230901;
  config.threads = 1;
  const FleetPopulation serial = FleetPopulation::Generate(config);
  for (int threads : {2, 8}) {
    config.threads = threads;
    const FleetPopulation parallel = FleetPopulation::Generate(config);
    ASSERT_EQ(parallel.size(), serial.size());
    EXPECT_EQ(parallel.faulty_count(), serial.faulty_count());
    for (int arch = 0; arch < kArchCount; ++arch) {
      EXPECT_EQ(parallel.CountByArch(arch), serial.CountByArch(arch));
    }
    EXPECT_EQ(parallel.faulty_serials(), serial.faulty_serials());
    for (uint64_t i = 0; i < serial.size(); ++i) {
      ASSERT_TRUE(SameProcessor(serial.processor(i), parallel.processor(i)))
          << "serial " << i << " differs at threads=" << threads;
    }
  }
}

TEST(ParallelDeterminismTest, ScreeningIsThreadCountInvariant) {
  PopulationConfig population_config;
  population_config.processor_count = 50000;
  population_config.seed = 20230901;
  const FleetPopulation fleet = FleetPopulation::Generate(population_config);
  const TestSuite suite = TestSuite::BuildFull();
  ScreeningPipeline pipeline(&suite);

  ScreeningConfig config;
  config.threads = 1;
  const ScreeningStats serial = pipeline.Run(fleet, config);
  for (int threads : {2, 8}) {
    config.threads = threads;
    const ScreeningStats parallel = pipeline.Run(fleet, config);
    EXPECT_EQ(parallel.tested, serial.tested);
    EXPECT_EQ(parallel.faulty, serial.faulty);
    EXPECT_EQ(parallel.detected_by_stage, serial.detected_by_stage);
    EXPECT_EQ(parallel.tested_by_arch, serial.tested_by_arch);
    EXPECT_EQ(parallel.detected_by_arch, serial.detected_by_arch);
    ASSERT_EQ(parallel.detections.size(), serial.detections.size());
    for (size_t i = 0; i < serial.detections.size(); ++i) {
      EXPECT_EQ(parallel.detections[i].serial, serial.detections[i].serial);
      EXPECT_EQ(parallel.detections[i].stage, serial.detections[i].stage);
      EXPECT_EQ(parallel.detections[i].month, serial.detections[i].month);
    }
  }
}

TEST(ParallelDeterminismTest, RunPlanIsThreadCountInvariant) {
  const TestSuite suite = TestSuite::BuildSampled(5);  // ~126 cases
  TestFramework framework(&suite);
  FaultyMachine machine(FindInCatalog("MIX2"), 77);

  TestRunConfig config;
  config.time_scale = 2e7;
  config.simultaneous_cores = true;
  config.seed = 11;
  config.parallel_plan_entries = true;
  const std::vector<TestPlanEntry> plan = framework.EqualPlan(5.0);

  config.threads = 1;
  const RunReport serial = framework.RunPlan(machine, plan, config);
  for (int threads : {2, 8}) {
    config.threads = threads;
    const RunReport parallel = framework.RunPlan(machine, plan, config);
    EXPECT_EQ(parallel.total_errors(), serial.total_errors());
    EXPECT_EQ(parallel.failed_testcase_ids(), serial.failed_testcase_ids());
    EXPECT_DOUBLE_EQ(parallel.total_wall_seconds, serial.total_wall_seconds);
    ASSERT_EQ(parallel.results.size(), serial.results.size());
    for (size_t i = 0; i < serial.results.size(); ++i) {
      EXPECT_EQ(parallel.results[i].testcase_id, serial.results[i].testcase_id);
      EXPECT_EQ(parallel.results[i].errors, serial.results[i].errors);
      EXPECT_EQ(parallel.results[i].errors_per_pcore, serial.results[i].errors_per_pcore);
      EXPECT_EQ(parallel.results[i].op_histogram, serial.results[i].op_histogram);
    }
    ASSERT_EQ(parallel.records.size(), serial.records.size());
    for (size_t i = 0; i < serial.records.size(); ++i) {
      EXPECT_EQ(parallel.records[i].testcase_id, serial.records[i].testcase_id);
      EXPECT_EQ(parallel.records[i].pcore, serial.records[i].pcore);
      EXPECT_TRUE((parallel.records[i].expected ^ serial.records[i].expected).Popcount() ==
                      0 &&
                  (parallel.records[i].actual ^ serial.records[i].actual).Popcount() == 0);
    }
  }
}

TEST(ParallelDeterminismTest, MetricsSnapshotIsByteIdenticalAcrossThreadCounts) {
  // The tentpole acceptance check: instrument every parallel hot path, render the
  // deterministic sections of the snapshot (timers excluded -- they measure the host),
  // and require the JSON to be byte-identical at 1, 2, and 8 threads.
  const TestSuite suite = TestSuite::BuildSampled(10);  // ~63 cases
  TestFramework framework(&suite);
  const ScreeningPipeline pipeline(&suite);

  auto run_all = [&](int threads) {
    MetricsRegistry registry;

    PopulationConfig population_config;
    population_config.processor_count = 30000;
    population_config.seed = 20230901;
    population_config.threads = threads;
    population_config.metrics = &registry;
    const FleetPopulation fleet = FleetPopulation::Generate(population_config);

    ScreeningConfig screening_config;
    screening_config.threads = threads;
    screening_config.metrics = &registry;
    (void)pipeline.Run(fleet, screening_config);

    FaultyMachine machine(FindInCatalog("MIX2"), 77);
    TestRunConfig run_config;
    run_config.time_scale = 2e7;
    run_config.simultaneous_cores = true;
    run_config.seed = 11;
    run_config.parallel_plan_entries = true;
    run_config.threads = threads;
    run_config.metrics = &registry;
    (void)framework.RunPlan(machine, framework.EqualPlan(2.0), run_config);

    std::ostringstream out;
    WriteMetricsJson(out, registry.Snapshot(), /*include_timers=*/false);
    return out.str();
  };

  const std::string serial = run_all(1);
  EXPECT_NE(serial.find("fleet.generate.processors"), std::string::npos);
  EXPECT_NE(serial.find("screening.tested"), std::string::npos);
  EXPECT_NE(serial.find("toolchain.invocations"), std::string::npos);
  for (int threads : {2, 8}) {
    EXPECT_EQ(run_all(threads), serial) << "metrics diverge at threads=" << threads;
  }
}

TEST(ParallelDeterminismTest, ParallelRunPlanLeavesCallerMachineUntouched) {
  const TestSuite suite = TestSuite::BuildSampled(40);
  TestFramework framework(&suite);
  FaultyMachine machine(MakeArchSpec("M2"));
  const double before = machine.cpu().now_seconds();
  TestRunConfig config;
  config.parallel_plan_entries = true;
  config.threads = 2;
  const RunReport report = framework.RunPlan(machine, framework.EqualPlan(0.5), config);
  EXPECT_EQ(report.total_errors(), 0u);
  EXPECT_EQ(machine.cpu().now_seconds(), before);
}

// --- Cached population counts (satellite: faulty_count / CountByArch are O(1)) ---

TEST(PopulationCountsTest, CachedCountsMatchFullScan) {
  PopulationConfig config;
  config.processor_count = 40000;
  config.seed = 515;
  const FleetPopulation fleet = FleetPopulation::Generate(config);

  uint64_t scanned_faulty = 0;
  std::vector<uint64_t> scanned_by_arch(kArchCount, 0);
  for (uint64_t serial = 0; serial < fleet.size(); ++serial) {
    scanned_faulty += fleet.faulty(serial) ? 1 : 0;
    ++scanned_by_arch[static_cast<size_t>(fleet.arch_index(serial))];
  }
  EXPECT_EQ(fleet.faulty_count(), scanned_faulty);
  uint64_t total = 0;
  for (int arch = 0; arch < kArchCount; ++arch) {
    EXPECT_EQ(fleet.CountByArch(arch), scanned_by_arch[static_cast<size_t>(arch)]);
    total += fleet.CountByArch(arch);
  }
  EXPECT_EQ(total, config.processor_count);
}

}  // namespace
}  // namespace sdc
