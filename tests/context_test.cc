// EngineContext contract tests (src/common/context.h): the environment is consulted
// exactly once, at construction -- a setenv after that point cannot re-shape an in-flight
// campaign; attached sinks are pinned at pass start -- detaching mid-stream neither drops
// nor double-merges a delta; and two campaigns interleaved on private contexts in one
// process are byte-identical (stats JSON, deterministic metrics JSON, sim trace JSON) to
// the same campaigns run serially, at 1, 2, and 8 lanes. This suite runs under TSAN in CI
// alongside parallel_test -- a reintroduced getenv on the hot path would race with the
// setenv calls below.

#include <atomic>
#include <cstdlib>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/context.h"
#include "src/common/parallel.h"
#include "src/fleet/pipeline.h"
#include "src/fleet/population.h"
#include "src/fleet/stream.h"
#include "src/report/exporters.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace sdc {
namespace {

// Scoped SDC_THREADS override that restores the previous value on destruction, so a
// failing assertion cannot leak an override into later tests.
class ScopedThreadsEnv {
 public:
  explicit ScopedThreadsEnv(const char* value) {
    const char* old = std::getenv("SDC_THREADS");
    had_old_ = old != nullptr;
    if (had_old_) {
      old_ = old;
    }
    Set(value);
  }
  ~ScopedThreadsEnv() { Set(had_old_ ? old_.c_str() : nullptr); }

  static void Set(const char* value) {
    if (value != nullptr) {
      ::setenv("SDC_THREADS", value, 1);
    } else {
      ::unsetenv("SDC_THREADS");
    }
  }

 private:
  bool had_old_ = false;
  std::string old_;
};

class ContextTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { suite_ = new TestSuite(TestSuite::BuildFull()); }
  static void TearDownTestSuite() {
    delete suite_;
    suite_ = nullptr;
  }

  static TestSuite* suite_;
};

TestSuite* ContextTest::suite_ = nullptr;

TEST_F(ContextTest, EnvResolvedOnceAtConstruction) {
  ScopedThreadsEnv env("3");
  EngineContext context(EngineOptions{.threads = 8});
  EXPECT_EQ(context.threads(), 3);  // SDC_THREADS overrides the requested count
  ScopedThreadsEnv::Set("1");
  EXPECT_EQ(context.threads(), 3);  // construction-time resolution is immutable
  EXPECT_EQ(context.pool().thread_count(), 3);
}

TEST_F(ContextTest, EnvOverridesDisabledIgnoresEnvironment) {
  ScopedThreadsEnv env("5");
  EngineContext context(EngineOptions{.threads = 2, .env_overrides = false});
  EXPECT_EQ(context.threads(), 2);
  ThreadPool exact(ExactThreadCount{4});
  EXPECT_EQ(exact.thread_count(), 4);
}

// Flips SDC_THREADS from inside the pass (first shard consumed) -- the in-flight
// campaign must keep the lanes its context resolved at construction.
class EnvFlippingConsumer : public ShardConsumer {
 public:
  void ConsumeShard(const FleetShard& /*shard*/) override {
    if (!flipped_.exchange(true)) {
      ScopedThreadsEnv::Set("1");
    }
  }

 private:
  std::atomic<bool> flipped_{false};
};

TEST_F(ContextTest, MidRunEnvChangeCannotAlterInFlightCampaign) {
  PopulationConfig population;
  population.processor_count = 60000;
  population.seed = 411;

  // Baseline: the same campaign with no environment games, same lane count.
  ScreeningPipeline pipeline(suite_);
  std::string baseline_stats;
  {
    EngineContext context(EngineOptions{.threads = 2, .env_overrides = false});
    FleetShardStream stream(population);
    StreamingScreen screen(&pipeline, ScreeningConfig{});
    stream.Drive({&screen}, context);
    ScreeningStats stats = screen.TakeStats();
    std::ostringstream out;
    WriteScreeningStatsJson(out, stats);
    baseline_stats = out.str();
  }

  ScopedThreadsEnv env("2");
  EngineContext context(EngineOptions{.threads = 0});  // env resolves this to 2
  ASSERT_EQ(context.threads(), 2);
  FleetShardStream stream(population);
  EnvFlippingConsumer flipper;
  StreamingScreen screen(&pipeline, ScreeningConfig{});
  const StreamReport report = stream.Drive({&flipper, &screen}, context);
  EXPECT_EQ(report.lanes, 2);  // the setenv("1") mid-pass changed nothing
  ScreeningStats stats = screen.TakeStats();
  std::ostringstream out;
  WriteScreeningStatsJson(out, stats);
  EXPECT_EQ(out.str(), baseline_stats);
}

// Detaches the context's sinks from inside the pass (first shard consumed). Pinning at
// pass start means the detach must change nothing about this pass's deltas.
class DetachingConsumer : public ShardConsumer {
 public:
  explicit DetachingConsumer(EngineContext* context) : context_(context) {}

  void ConsumeShard(const FleetShard& /*shard*/) override {
    if (!detached_.exchange(true)) {
      context_->AttachMetrics(nullptr);
      context_->AttachTrace(nullptr);
    }
  }

 private:
  EngineContext* context_;
  std::atomic<bool> detached_{false};
};

TEST_F(ContextTest, DetachMidStreamNeitherDropsNorDoubleMerges) {
  PopulationConfig population;
  population.processor_count = 60000;
  population.seed = 902;
  ScreeningPipeline pipeline(suite_);

  auto run = [&](bool detach_mid_stream) {
    MetricsRegistry registry;
    TraceRecorder recorder;
    EngineContext context(EngineOptions{
        .threads = 2, .env_overrides = false, .metrics = &registry, .trace = &recorder});
    FleetShardStream stream(population);
    DetachingConsumer detacher(&context);
    StreamingScreen screen(&pipeline, ScreeningConfig{});
    std::vector<ShardConsumer*> consumers;
    if (detach_mid_stream) {
      consumers.push_back(&detacher);
    }
    consumers.push_back(&screen);
    stream.Drive(std::span<ShardConsumer* const>(consumers), context);
    if (detach_mid_stream) {
      // The detach landed: the NEXT pass would see no sinks...
      EXPECT_EQ(context.metrics(), nullptr);
      EXPECT_EQ(context.trace(), nullptr);
      // ...and running one must leave the detached registry untouched (no double-merge).
      std::ostringstream before;
      WriteMetricsJson(before, registry.Snapshot(), /*include_timers=*/false);
      FleetShardStream second(population);
      StreamingScreen second_screen(&pipeline, ScreeningConfig{});
      second.Drive({&second_screen}, context);
      std::ostringstream after;
      WriteMetricsJson(after, registry.Snapshot(), /*include_timers=*/false);
      EXPECT_EQ(before.str(), after.str());
    }
    std::ostringstream metrics_json;
    WriteMetricsJson(metrics_json, registry.Snapshot(), /*include_timers=*/false);
    std::ostringstream trace_json;
    WriteTraceJson(trace_json, recorder.Snapshot(), /*include_host=*/false);
    return std::pair<std::string, std::string>(metrics_json.str(), trace_json.str());
  };

  const auto always_attached = run(false);
  const auto detached_mid_stream = run(true);
  // Neither dropped (mid-stream run has every delta of the attached run) nor
  // double-merged (and not one delta more): the documents are byte-identical.
  EXPECT_EQ(detached_mid_stream.first, always_attached.first);
  EXPECT_EQ(detached_mid_stream.second, always_attached.second);
}

// One daemon-style campaign: private context, private sinks, fused streaming pass.
struct CampaignOutput {
  std::string stats;
  std::string metrics;
  std::string trace;
};

CampaignOutput RunCampaign(const TestSuite& suite, uint64_t processors,
                           uint64_t fleet_seed, uint64_t screening_seed, int lanes) {
  MetricsRegistry registry;
  TraceRecorder recorder;
  EngineContext context(EngineOptions{
      .threads = lanes, .env_overrides = false, .metrics = &registry, .trace = &recorder});
  PopulationConfig population;
  population.processor_count = processors;
  population.seed = fleet_seed;
  ScreeningPipeline pipeline(&suite);
  ScreeningConfig screening;
  screening.seed = screening_seed;
  FleetShardStream stream(population);
  StreamingScreen screen(&pipeline, screening);
  stream.Drive({&screen}, context);
  ScreeningStats stats = screen.TakeStats();
  CampaignOutput output;
  std::ostringstream stats_json;
  WriteScreeningStatsJson(stats_json, stats);
  output.stats = stats_json.str();
  std::ostringstream metrics_json;
  WriteMetricsJson(metrics_json, registry.Snapshot(), /*include_timers=*/false);
  output.metrics = metrics_json.str();
  std::ostringstream trace_json;
  WriteTraceJson(trace_json, recorder.Snapshot(), /*include_host=*/false);
  output.trace = trace_json.str();
  return output;
}

TEST_F(ContextTest, InterleavedCampaignsMatchSerialRuns) {
  constexpr uint64_t kFleetA = 60000, kSeedA = 1234, kScreenA = 77;
  constexpr uint64_t kFleetB = 90000, kSeedB = 5678, kScreenB = 901;
  for (const int lanes : {1, 2, 8}) {
    SCOPED_TRACE("lanes=" + std::to_string(lanes));
    const CampaignOutput serial_a = RunCampaign(*suite_, kFleetA, kSeedA, kScreenA, lanes);
    const CampaignOutput serial_b = RunCampaign(*suite_, kFleetB, kSeedB, kScreenB, lanes);

    CampaignOutput concurrent_a;
    CampaignOutput concurrent_b;
    std::thread thread_a([&] {
      concurrent_a = RunCampaign(*suite_, kFleetA, kSeedA, kScreenA, lanes);
    });
    std::thread thread_b([&] {
      concurrent_b = RunCampaign(*suite_, kFleetB, kSeedB, kScreenB, lanes);
    });
    thread_a.join();
    thread_b.join();

    EXPECT_EQ(concurrent_a.stats, serial_a.stats);
    EXPECT_EQ(concurrent_a.metrics, serial_a.metrics);
    EXPECT_EQ(concurrent_a.trace, serial_a.trace);
    EXPECT_EQ(concurrent_b.stats, serial_b.stats);
    EXPECT_EQ(concurrent_b.metrics, serial_b.metrics);
    EXPECT_EQ(concurrent_b.trace, serial_b.trace);
  }
}

// Context-threaded materialized paths agree with the legacy overloads: Generate and
// Run produce the same bytes whether the context is explicit or per-call.
TEST_F(ContextTest, ContextOverloadsMatchLegacyPaths) {
  PopulationConfig population;
  population.processor_count = 50000;
  population.seed = 31;
  population.threads = 2;

  const FleetPopulation legacy_fleet = FleetPopulation::Generate(population);
  ScreeningPipeline pipeline(suite_);
  ScreeningConfig screening;
  screening.threads = 2;
  const ScreeningStats legacy_stats = pipeline.Run(legacy_fleet, screening);

  EngineContext context(EngineOptions{.threads = 2, .env_overrides = false});
  const FleetPopulation context_fleet = FleetPopulation::Generate(population, context);
  const ScreeningStats context_stats = pipeline.Run(context_fleet, screening, context);

  std::ostringstream legacy_json, context_json;
  WriteScreeningStatsJson(legacy_json, legacy_stats);
  WriteScreeningStatsJson(context_json, context_stats);
  EXPECT_EQ(context_json.str(), legacy_json.str());
}

}  // namespace
}  // namespace sdc
