// Tests for src/scrub: discovery equivalence (streaming vs materialized), report
// byte-identity at 1/2/8 threads, strict budget accounting, degenerate configs, and the
// coverage-vs-budget tradeoff direction.

#include <iomanip>
#include <sstream>

#include <gtest/gtest.h>

#include "src/common/context.h"
#include "src/scrub/scrubber.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace sdc {
namespace {

class ScrubTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { suite_ = new TestSuite(TestSuite::BuildFull()); }
  static void TearDownTestSuite() {
    delete suite_;
    suite_ = nullptr;
  }
  static TestSuite* suite_;
};

TestSuite* ScrubTest::suite_ = nullptr;

ScrubConfig SmallConfig() {
  ScrubConfig config;
  config.population.processor_count = 50'000;
  config.population.seed = 2024;
  config.budget_fraction = 2e-5;
  config.horizon_months = 4.0;
  config.epoch_months = 1.0;
  config.max_cases_per_round = 8;
  config.workload_sample_hours = 0.02;
  return config;
}

// Full-precision fingerprint of every report field; byte-identity across runs is
// equality of these strings.
std::string Fingerprint(const ScrubReport& report) {
  std::ostringstream out;
  out << std::hexfloat;
  out << report.fleet_processors << ' ' << report.fleet_cores << ' ' << report.faulty
      << ' ' << report.pre_production_detections << ' ' << report.sessions << ' '
      << report.undetectable_sessions << '\n';
  out << report.budget_fraction << ' ' << report.nominal_round_seconds << ' '
      << report.total_budget_seconds << ' ' << report.session_seconds << ' '
      << report.sweep_seconds << ' ' << report.diagnosis_seconds << ' '
      << report.workload_sdc_events << '\n';
  for (const ScrubEpochPoint& point : report.timeline) {
    out << point.epoch << ' ' << point.month << ' ' << point.budget_seconds << ' '
        << point.session_seconds << ' ' << point.sweep_seconds << ' '
        << point.sessions_funded << ' ' << point.parts_swept << ' ' << point.detections
        << '\n';
  }
  for (const ScrubDetection& detection : report.detections) {
    out << detection.serial << ' ' << detection.arch_index << ' ' << detection.month
        << ' ' << detection.rounds << ' ' << detection.scheduled_seconds << ' '
        << detection.screen_regular_month << ' ' << detection.deprecated << ' '
        << detection.masked_cores << ' ' << detection.provenance.epoch << ' '
        << detection.provenance.rank << ' ' << detection.provenance.score << ' '
        << detection.provenance.granted_seconds << ' '
        << detection.provenance.consumed_seconds << '\n';
  }
  out << report.capacity.fleet_cores << ' ' << report.capacity.production_detections
      << ' ' << report.capacity.baseline_cores_lost << ' '
      << report.capacity.fine_grained_cores_lost << ' '
      << report.capacity.parts_deprecated_fine << '\n';
  for (const CapacityPoint& point : report.capacity.timeline) {
    out << point.month << ' ' << point.baseline_cores_lost << ' '
        << point.fine_grained_cores_lost << '\n';
  }
  return out.str();
}

// The acceptance bar of the PR: identical JSON-able output at 1, 2, and 8 threads, for
// both discovery modes.
TEST_F(ScrubTest, ByteIdenticalAcrossThreadsAndDiscovery) {
  FleetScrubber scrubber(suite_);
  std::string expected;
  for (const bool streaming : {true, false}) {
    for (const int threads : {1, 2, 8}) {
      ScrubConfig config = SmallConfig();
      config.stream_discovery = streaming;
      EngineOptions options;
      options.threads = threads;
      options.env_overrides = false;
      EngineContext context(options);
      const ScrubReport report = scrubber.Run(config, context);
      const std::string fingerprint = Fingerprint(report);
      if (expected.empty()) {
        expected = fingerprint;
        EXPECT_GT(report.sessions, 0u);
        EXPECT_GT(report.timeline.size(), 0u);
      } else {
        EXPECT_EQ(fingerprint, expected)
            << "streaming=" << streaming << " threads=" << threads;
      }
    }
  }
}

// Strict funding: no epoch -- and therefore no run -- ever spends more than its budget.
TEST_F(ScrubTest, SpendNeverExceedsBudget) {
  FleetScrubber scrubber(suite_);
  ScrubConfig budget_limited = SmallConfig();
  // Below the fleet's one-round-per-part-per-epoch demand (~0.52M s/epoch at this size),
  // so the scheduler must exhaust the budget rather than the demand.
  budget_limited.budget_fraction = 2e-6;
  const ScrubReport report = scrubber.Run(budget_limited);
  ASSERT_FALSE(report.timeline.empty());
  for (const ScrubEpochPoint& point : report.timeline) {
    EXPECT_LE(point.spent_seconds(), point.budget_seconds * (1.0 + 1e-9));
  }
  EXPECT_LE(report.total_spent_seconds(), report.total_budget_seconds * (1.0 + 1e-9));
  EXPECT_GT(report.total_spent_seconds(), 0.0);
  // At this budget the fleet demands more rounds than the budget can fund, so the
  // scrubber must spend essentially all of it (the 1%-of-budget acceptance band).
  EXPECT_GE(report.total_spent_seconds(), report.total_budget_seconds * 0.99);
}

// Detections carry usable provenance: the funding decision that bought each one.
TEST_F(ScrubTest, DetectionsCarryProvenance) {
  FleetScrubber scrubber(suite_);
  ScrubConfig config = SmallConfig();
  config.budget_fraction = 2e-4;    // fund aggressively so detections happen early
  config.max_cases_per_round = 0;   // full plans: escapes carry tricky defects, and a
                                    // narrow ripple window can take months to reach the
                                    // one testcase that exposes them
  config.farron.time_scale = 1e9;   // coarse toolchain sim keeps the test fast
  config.horizon_months = 3.0;
  const ScrubReport report = scrubber.Run(config);
  ASSERT_GT(report.detections.size(), 0u);
  for (const ScrubDetection& detection : report.detections) {
    EXPECT_GT(detection.month, 0.0);
    EXPECT_GT(detection.rounds, 0u);
    EXPECT_LE(detection.provenance.consumed_seconds,
              detection.provenance.granted_seconds + 1e-9);
    EXPECT_GT(detection.provenance.score, 0.0);
    EXPECT_LT(detection.provenance.epoch, report.timeline.size());
  }
  // Capacity replay covers exactly the detections.
  EXPECT_EQ(report.capacity.production_detections, report.detections.size());
  EXPECT_GE(report.capacity.baseline_cores_lost,
            report.capacity.fine_grained_cores_lost);
}

// A zero budget funds nothing and detects nothing, but the report stays well-formed.
TEST_F(ScrubTest, ZeroBudgetFundsNothing) {
  FleetScrubber scrubber(suite_);
  ScrubConfig config = SmallConfig();
  config.budget_fraction = 0.0;
  config.workload_sample_hours = 0.0;
  const ScrubReport report = scrubber.Run(config);
  EXPECT_GT(report.sessions, 0u);
  EXPECT_EQ(report.detections.size(), 0u);
  EXPECT_EQ(report.total_spent_seconds(), 0.0);
  EXPECT_EQ(report.coverage(), 0.0);
  for (const ScrubEpochPoint& point : report.timeline) {
    EXPECT_EQ(point.sessions_funded, 0u);
    EXPECT_EQ(point.parts_swept, 0u);
  }
}

// No faulty parts at all: the scrubber sweeps the clean fleet and reports zero coverage
// work without tripping on the empty session set.
TEST_F(ScrubTest, FaultFreeFleetSweepsOnly) {
  FleetScrubber scrubber(suite_);
  ScrubConfig config = SmallConfig();
  config.population.processor_count = 4096;
  config.population.detected_rate = {};  // nobody is faulty
  const ScrubReport report = scrubber.Run(config);
  EXPECT_EQ(report.faulty, 0u);
  EXPECT_EQ(report.sessions, 0u);
  EXPECT_EQ(report.detections.size(), 0u);
  EXPECT_EQ(report.session_seconds, 0.0);
  EXPECT_GT(report.sweep_seconds, 0.0);  // budget still sweeps clean parts
  EXPECT_LE(report.total_spent_seconds(), report.total_budget_seconds * (1.0 + 1e-9));
}

// An empty fleet is a no-op, not a crash.
TEST_F(ScrubTest, EmptyFleetIsNoop) {
  FleetScrubber scrubber(suite_);
  ScrubConfig config = SmallConfig();
  config.population.processor_count = 0;
  const ScrubReport report = scrubber.Run(config);
  EXPECT_EQ(report.fleet_processors, 0u);
  EXPECT_EQ(report.sessions, 0u);
  EXPECT_EQ(report.total_budget_seconds, 0.0);
  EXPECT_EQ(report.total_spent_seconds(), 0.0);
}

// More budget never detects fewer escapes: the coverage-vs-budget curve the tradeoff
// study plots is monotone.
TEST_F(ScrubTest, CoverageMonotoneInBudget) {
  FleetScrubber scrubber(suite_);
  ScrubConfig low = SmallConfig();
  low.budget_fraction = 5e-6;
  ScrubConfig high = SmallConfig();
  high.budget_fraction = 2e-4;
  const ScrubReport low_report = scrubber.Run(low);
  const ScrubReport high_report = scrubber.Run(high);
  EXPECT_GE(high_report.coverage(), low_report.coverage());
  EXPECT_GE(high_report.total_spent_seconds(), low_report.total_spent_seconds());
}

// scrub.* metrics and the scrub trace track are emitted once per run through the pinned
// sinks.
TEST_F(ScrubTest, EmitsMetricsAndTrace) {
  FleetScrubber scrubber(suite_);
  ScrubConfig config = SmallConfig();
  MetricsRegistry metrics;
  TraceRecorder trace;
  config.metrics = &metrics;
  config.trace = &trace;
  const ScrubReport report = scrubber.Run(config);
  std::ostringstream text;
  metrics.Snapshot().DumpText(text);
  EXPECT_NE(text.str().find("scrub.runs"), std::string::npos);
  EXPECT_NE(text.str().find("scrub.sessions"), std::string::npos);
  const TraceSnapshot snapshot = trace.Snapshot();
  uint64_t epoch_spans = 0;
  for (const TraceEvent& event : snapshot.sim) {
    if (event.name == "scrub.epoch") {
      EXPECT_EQ(event.track, kTraceTrackScrub);
      ++epoch_spans;
    }
  }
  EXPECT_EQ(epoch_spans, report.timeline.size());
}

}  // namespace
}  // namespace sdc
