// Tests for the longitudinal lifecycle simulation: wear-out onset, exposure window,
// detection, masking, and post-masking cleanliness.

#include <gtest/gtest.h>

#include "src/farron/longitudinal.h"

namespace sdc {
namespace {

class LifecycleTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { suite_ = new TestSuite(TestSuite::BuildFull()); }
  static void TearDownTestSuite() {
    delete suite_;
    suite_ = nullptr;
  }
  static TestSuite* suite_;
};

TestSuite* LifecycleTest::suite_ = nullptr;

TEST_F(LifecycleTest, WearOutDefectCaughtAtNextRound) {
  FaultyProcessorInfo info = FindInCatalog("FPU1");
  info.defects[0].onset_months = 10.0;
  FaultyMachine machine(info, 42);
  FarronConfig config;
  Farron farron(suite_, &machine, config);

  LifecycleConfig lifecycle;
  lifecycle.horizon_months = 18.0;
  lifecycle.app_hours_per_interval = 1.0;
  lifecycle.workload.kernel_case_index =
      static_cast<size_t>(suite_->IndexOf("lib.math.fp_arctan.f64.n256"));
  lifecycle.workload.base_utilization = 0.5;
  lifecycle.workload.preferred_pcore = info.defects[0].affected_pcores.front();
  lifecycle.app_features = {Feature::kFpu};

  const LifecycleReport report = RunLifecycle(farron, machine, *suite_, lifecycle);
  // Pre-production and the rounds before onset are clean.
  for (const LifecyclePeriod& period : report.periods) {
    if (period.month < 10.0) {
      EXPECT_FALSE(period.detected) << "month " << period.month;
      EXPECT_EQ(period.app_sdc_events, 0u) << "month " << period.month;
    }
  }
  // Detection at the first round after onset (month 12 on a 3-month cadence).
  EXPECT_DOUBLE_EQ(report.first_detection_month, 12.0);
  EXPECT_DOUBLE_EQ(report.DetectionLatencyMonths(10.0), 2.0);
  EXPECT_EQ(report.final_masked_cores, 1);
  EXPECT_FALSE(report.deprecated);
  // The exposure window saw corruption; the post-masking periods did not.
  EXPECT_GT(report.total_app_sdc_events, 0u);
  for (const LifecyclePeriod& period : report.periods) {
    if (period.month > 12.0) {
      EXPECT_EQ(period.app_sdc_events, 0u) << "month " << period.month;
      EXPECT_FALSE(period.detected) << "month " << period.month;
    }
  }
}

TEST_F(LifecycleTest, HealthyPartStaysCleanForTheHorizon) {
  FaultyMachine machine(MakeArchSpec("M5"));
  FarronConfig config;
  Farron farron(suite_, &machine, config);
  LifecycleConfig lifecycle;
  lifecycle.horizon_months = 9.0;
  lifecycle.app_hours_per_interval = 0.5;
  lifecycle.workload.kernel_case_index =
      static_cast<size_t>(suite_->IndexOf("lib.crc32.scalar.b1024"));
  const LifecycleReport report = RunLifecycle(farron, machine, *suite_, lifecycle);
  EXPECT_LT(report.first_detection_month, 0.0);
  EXPECT_EQ(report.total_app_sdc_events, 0u);
  EXPECT_EQ(report.final_masked_cores, 0);
}

TEST_F(LifecycleTest, ManufacturingDefectCaughtAtPreProduction) {
  FaultyMachine machine(FindInCatalog("SIMD1"), 43);  // onset 0
  FarronConfig config;
  Farron farron(suite_, &machine, config);
  LifecycleConfig lifecycle;
  lifecycle.horizon_months = 6.0;
  lifecycle.app_hours_per_interval = 0.5;
  lifecycle.workload.kernel_case_index =
      static_cast<size_t>(suite_->IndexOf("lib.crc32.scalar.b1024"));
  const LifecycleReport report = RunLifecycle(farron, machine, *suite_, lifecycle);
  EXPECT_DOUBLE_EQ(report.first_detection_month, 0.0);
  EXPECT_GE(report.final_masked_cores, 1);
}

TEST_F(LifecycleTest, DeprecatedPartStopsRunning) {
  FaultyMachine machine(FindInCatalog("MIX1"), 44);  // all cores defective from day one
  FarronConfig config;
  Farron farron(suite_, &machine, config);
  LifecycleConfig lifecycle;
  lifecycle.horizon_months = 9.0;
  lifecycle.app_hours_per_interval = 0.5;
  lifecycle.workload.kernel_case_index =
      static_cast<size_t>(suite_->IndexOf("lib.crc32.scalar.b1024"));
  const LifecycleReport report = RunLifecycle(farron, machine, *suite_, lifecycle);
  EXPECT_TRUE(report.deprecated);
  for (const LifecyclePeriod& period : report.periods) {
    if (period.month > 0.0) {
      EXPECT_EQ(period.app_sdc_events, 0u);  // nothing runs on a withdrawn part
      EXPECT_FALSE(period.tested);
    }
  }
}

}  // namespace
}  // namespace sdc
