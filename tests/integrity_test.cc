// Unit and property tests for src/integrity: CRC32, hashing, SECDED ECC, Reed-Solomon.
// The ECC and RS suites are parameterized sweeps over every error position / erasure combo.

#include <bit>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/fault/catalog.h"
#include "src/fault/machine.h"
#include "src/integrity/adler32.h"
#include "src/integrity/crc32.h"
#include "src/integrity/ecc.h"
#include "src/integrity/erasure.h"
#include "src/integrity/hash.h"

namespace sdc {
namespace {

std::vector<uint8_t> Bytes(const std::string& text) {
  return std::vector<uint8_t>(text.begin(), text.end());
}

// --- CRC32 ---

TEST(Crc32Test, KnownVectors) {
  // Standard IEEE CRC32 check values.
  EXPECT_EQ(Crc32(Bytes("123456789")), 0xCBF43926u);
  EXPECT_EQ(Crc32(Bytes("")), 0x00000000u);
  EXPECT_EQ(Crc32(Bytes("a")), 0xE8B7BE43u);
}

TEST(Crc32Test, TableMatchesBitwise) {
  Rng rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<uint8_t> data(static_cast<size_t>(rng.NextBelow(300)) + 1);
    for (auto& byte : data) {
      byte = static_cast<uint8_t>(rng.Next());
    }
    EXPECT_EQ(Crc32(data), Crc32Bitwise(data));
  }
}

TEST(Crc32Test, DetectsSingleByteChange) {
  std::vector<uint8_t> data = Bytes("the quick brown fox");
  const uint32_t before = Crc32(data);
  data[5] ^= 0x40;
  EXPECT_NE(Crc32(data), before);
}

TEST(Crc32Test, ProcessorPathsMatchHostOnHealthyMachine) {
  FaultyMachine machine(MakeArchSpec("M2"));
  Rng rng(2);
  std::vector<uint8_t> data(1000);
  for (auto& byte : data) {
    byte = static_cast<uint8_t>(rng.Next());
  }
  EXPECT_EQ(Crc32OnProcessor(machine.cpu(), 0, data), Crc32(data));
  EXPECT_EQ(Crc32VectorOnProcessor(machine.cpu(), 0, data), Crc32(data));
}

TEST(Crc32Test, VectorPathHandlesTails) {
  FaultyMachine machine(MakeArchSpec("M2"));
  for (size_t size : {1u, 7u, 8u, 9u, 15u, 16u, 17u}) {
    std::vector<uint8_t> data(size, 0x5a);
    EXPECT_EQ(Crc32VectorOnProcessor(machine.cpu(), 0, data), Crc32(data)) << size;
  }
}

// --- Hashing ---

TEST(HashTest, Fnv1a64KnownValues) {
  EXPECT_EQ(Fnv1a64(Bytes("")), 0xcbf29ce484222325ull);
  EXPECT_EQ(Fnv1a64(Bytes("a")), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(Fnv1a64(Bytes("foobar")), 0x85944171f73967e8ull);
}

TEST(HashTest, MurmurMixAvalanche) {
  // Flipping one input bit should flip roughly half of the output bits.
  int total_flips = 0;
  constexpr int kTrials = 256;
  for (int trial = 0; trial < kTrials; ++trial) {
    const uint64_t base = Mix64(trial + 1);
    const uint64_t flipped = base ^ (uint64_t{1} << (trial % 64));
    total_flips += std::popcount(MurmurMix64(base) ^ MurmurMix64(flipped));
  }
  EXPECT_NEAR(static_cast<double>(total_flips) / kTrials, 32.0, 3.0);
}

TEST(HashTest, ProcessorPathMatchesHostOnHealthyMachine) {
  FaultyMachine machine(MakeArchSpec("M3"));
  const auto data = Bytes("metadata-key-0123456789abcdef");
  EXPECT_EQ(Fnv1a64OnProcessor(machine.cpu(), 0, data), Fnv1a64(data));
}

// --- ECC (SECDED) ---

TEST(EccTest, CleanRoundTrip) {
  for (uint64_t value : {0ull, 1ull, 0xffffffffffffffffull, 0x0123456789abcdefull}) {
    const EccWord word = EccEncode(value);
    const EccDecodeResult result = EccDecode(word);
    EXPECT_EQ(result.status, EccStatus::kClean);
    EXPECT_EQ(result.data, value);
  }
}

class EccSingleBitTest : public ::testing::TestWithParam<int> {};

TEST_P(EccSingleBitTest, CorrectsAnySingleFlip) {
  const int position = GetParam();
  const uint64_t value = 0x5a5a1234deadbeefull;
  EccWord word = EccEncode(value);
  EccFlipBit(word, position);
  const EccDecodeResult result = EccDecode(word);
  EXPECT_EQ(result.status, EccStatus::kCorrected) << "bit " << position;
  EXPECT_EQ(result.data, value) << "bit " << position;
}

INSTANTIATE_TEST_SUITE_P(AllPositions, EccSingleBitTest, ::testing::Range(0, 72));

class EccDoubleBitTest : public ::testing::TestWithParam<int> {};

TEST_P(EccDoubleBitTest, DetectsDoubleFlips) {
  const int first = GetParam();
  const uint64_t value = 0x0f0f00ff12345678ull;
  for (int second = 0; second < 72; second += 7) {
    if (second == first) {
      continue;
    }
    EccWord word = EccEncode(value);
    EccFlipBit(word, first);
    EccFlipBit(word, second);
    const EccDecodeResult result = EccDecode(word);
    EXPECT_EQ(result.status, EccStatus::kDoubleDetected) << first << "," << second;
  }
}

INSTANTIATE_TEST_SUITE_P(SampledPositions, EccDoubleBitTest,
                         ::testing::Values(0, 1, 5, 13, 31, 44, 63, 64, 70, 71));

TEST(EccTest, TripleFlipsCanEscape) {
  // Observation 12 / Section 6.2: SECDED cannot handle the multi-bit errors CPU SDCs
  // produce. A 3-bit flip either miscorrects or aliases to clean.
  const uint64_t value = 0x1122334455667788ull;
  int undetected_or_wrong = 0;
  for (int a = 0; a < 24; ++a) {
    EccWord word = EccEncode(value);
    EccFlipBit(word, a);
    EccFlipBit(word, a + 20);
    EccFlipBit(word, a + 40);
    const EccDecodeResult result = EccDecode(word);
    if (result.status != EccStatus::kDoubleDetected || result.data != value) {
      ++undetected_or_wrong;
    }
  }
  EXPECT_GT(undetected_or_wrong, 0);
}

// --- Reed-Solomon ---

struct RsParam {
  int data_shards;
  int parity_shards;
};

class ReedSolomonTest : public ::testing::TestWithParam<RsParam> {};

TEST_P(ReedSolomonTest, ReconstructsFromAnyKSurvivors) {
  const RsParam param = GetParam();
  ReedSolomon rs(param.data_shards, param.parity_shards);
  Rng rng(Mix64(param.data_shards * 100 + param.parity_shards));
  constexpr size_t kShardBytes = 64;
  std::vector<std::vector<uint8_t>> data(static_cast<size_t>(param.data_shards));
  for (auto& shard : data) {
    shard.resize(kShardBytes);
    for (auto& byte : shard) {
      byte = static_cast<uint8_t>(rng.Next());
    }
  }
  const auto parity = rs.Encode(data);
  ASSERT_EQ(parity.size(), static_cast<size_t>(param.parity_shards));

  const int total = param.data_shards + param.parity_shards;
  // Erase up to m shards in a rolling window; reconstruction must always succeed.
  for (int start = 0; start < total; ++start) {
    std::vector<std::vector<uint8_t>> shards(static_cast<size_t>(total));
    std::vector<bool> present(static_cast<size_t>(total), true);
    for (int i = 0; i < param.data_shards; ++i) {
      shards[i] = data[i];
    }
    for (int i = 0; i < param.parity_shards; ++i) {
      shards[param.data_shards + i] = parity[i];
    }
    for (int e = 0; e < param.parity_shards; ++e) {
      const int victim = (start + e * 3) % total;
      present[victim] = false;
      shards[victim].clear();
    }
    const auto recovered = rs.Reconstruct(shards, present);
    ASSERT_TRUE(recovered.has_value()) << "window " << start;
    for (int i = 0; i < param.data_shards; ++i) {
      EXPECT_EQ((*recovered)[i], data[i]) << "shard " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Configs, ReedSolomonTest,
                         ::testing::Values(RsParam{2, 1}, RsParam{4, 2}, RsParam{6, 3},
                                           RsParam{8, 4}, RsParam{10, 4}));

TEST(ReedSolomonTest2, FailsWithTooFewShards) {
  ReedSolomon rs(4, 2);
  std::vector<std::vector<uint8_t>> shards(6);
  std::vector<bool> present(6, false);
  present[0] = present[1] = present[2] = true;  // only 3 of 4 needed survive
  shards[0] = shards[1] = shards[2] = std::vector<uint8_t>(8, 1);
  EXPECT_FALSE(rs.Reconstruct(shards, present).has_value());
}

TEST(ReedSolomonTest2, CorruptedShardPropagatesSilently) {
  // EC recovers erasures but cannot *detect* corruption: a silently corrupted survivor
  // reconstructs wrong data with no error (Observation 12).
  ReedSolomon rs(4, 2);
  Rng rng(9);
  std::vector<std::vector<uint8_t>> data(4, std::vector<uint8_t>(32));
  for (auto& shard : data) {
    for (auto& byte : shard) {
      byte = static_cast<uint8_t>(rng.Next());
    }
  }
  const auto parity = rs.Encode(data);
  std::vector<std::vector<uint8_t>> shards = {data[0], data[1], data[2], data[3],
                                              parity[0], parity[1]};
  std::vector<bool> present(6, true);
  present[0] = false;  // lose shard 0
  shards[0].clear();
  shards[4][3] ^= 0x10;  // silent corruption in surviving parity
  const auto recovered = rs.Reconstruct(shards, present);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_NE((*recovered)[0], data[0]);  // corruption propagated into "recovered" data
}

TEST(ReedSolomonTest2, ProcessorEncodeMatchesHostWhenHealthy) {
  FaultyMachine machine(MakeArchSpec("M2"));
  ReedSolomon rs(4, 2);
  std::vector<std::vector<uint8_t>> data(4, std::vector<uint8_t>(16, 0x7e));
  EXPECT_EQ(rs.EncodeOnProcessor(machine.cpu(), 0, data), rs.Encode(data));
}

TEST(Gf256Test, FieldAxiomsSampled) {
  Rng rng(17);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto a = static_cast<uint8_t>(rng.Next());
    const auto b = static_cast<uint8_t>(rng.Next());
    const auto c = static_cast<uint8_t>(rng.Next());
    EXPECT_EQ(gf256::Mul(a, b), gf256::Mul(b, a));
    EXPECT_EQ(gf256::Mul(a, gf256::Mul(b, c)), gf256::Mul(gf256::Mul(a, b), c));
    // Distributivity over XOR (the field's addition).
    EXPECT_EQ(gf256::Mul(a, static_cast<uint8_t>(b ^ c)),
              static_cast<uint8_t>(gf256::Mul(a, b) ^ gf256::Mul(a, c)));
    if (a != 0) {
      EXPECT_EQ(gf256::Mul(a, gf256::Inv(a)), 1);
      EXPECT_EQ(gf256::Div(gf256::Mul(a, b), a), b);
    }
  }
}


// --- Adler-32 / CRC-64 ---

TEST(Adler32Test, KnownVectors) {
  // RFC 1950 check value for "Wikipedia".
  EXPECT_EQ(Adler32(Bytes("Wikipedia")), 0x11E60398u);
  EXPECT_EQ(Adler32(Bytes("")), 1u);
}

TEST(Adler32Test, DetectsByteChange) {
  std::vector<uint8_t> data = Bytes("adler32 payload example");
  const uint32_t before = Adler32(data);
  data[3] ^= 0x04;
  EXPECT_NE(Adler32(data), before);
}

TEST(Adler32Test, ProcessorPathMatchesHostWhenHealthy) {
  FaultyMachine machine(MakeArchSpec("M2"));
  Rng rng(4);
  for (size_t size : {1u, 15u, 16u, 17u, 300u}) {
    std::vector<uint8_t> data(size);
    for (auto& byte : data) {
      byte = static_cast<uint8_t>(rng.Next());
    }
    EXPECT_EQ(Adler32OnProcessor(machine.cpu(), 0, data), Adler32(data)) << size;
  }
}

TEST(Crc64Test, EmptyAndStability) {
  EXPECT_EQ(Crc64(Bytes("")), 0u);
  const auto data = Bytes("crc64 check payload");
  EXPECT_EQ(Crc64(data), Crc64(data));
  auto modified = data;
  modified[0] ^= 1;
  EXPECT_NE(Crc64(modified), Crc64(data));
}

TEST(Crc64Test, ProcessorPathMatchesHostWhenHealthy) {
  FaultyMachine machine(MakeArchSpec("M3"));
  Rng rng(6);
  for (size_t size : {3u, 8u, 9u, 64u, 1000u}) {
    std::vector<uint8_t> data(size);
    for (auto& byte : data) {
      byte = static_cast<uint8_t>(rng.Next());
    }
    EXPECT_EQ(Crc64OnProcessor(machine.cpu(), 0, data), Crc64(data)) << size;
  }
}

}  // namespace
}  // namespace sdc
