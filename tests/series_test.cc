// Tests for src/telemetry/series.h and the engine paths that feed it: ring mechanics
// (capacity eviction, dropped accounting, clock pinning), the clock-domain segregation
// the exporter honors, and the PR's acceptance bar -- the sim-series JSON document is
// byte-identical at 1, 2, and 8 threads, in streaming and materialized execution, for
// both the screening pass and the scrubber's epoch loop.

#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "src/common/context.h"
#include "src/fleet/pipeline.h"
#include "src/fleet/population.h"
#include "src/fleet/stream.h"
#include "src/report/exporters.h"
#include "src/scrub/scrubber.h"
#include "src/telemetry/series.h"

namespace sdc {
namespace {

TEST(SeriesRecorderTest, AppendsInOrderWithTotals) {
  SeriesRecorder recorder;
  recorder.Append("a", SeriesClock::kSim, 1.0, 10.0);
  recorder.Append("a", SeriesClock::kSim, 2.0, 20.0);
  recorder.Append("b", SeriesClock::kSim, 5.0, 50.0);
  const SeriesSnapshot snapshot = recorder.Snapshot();
  ASSERT_EQ(snapshot.sim.size(), 2u);
  EXPECT_TRUE(snapshot.host.empty());
  const SeriesData& a = snapshot.sim.at("a");
  ASSERT_EQ(a.points.size(), 2u);
  EXPECT_EQ(a.points[0], (SeriesPoint{1.0, 10.0}));
  EXPECT_EQ(a.points[1], (SeriesPoint{2.0, 20.0}));
  EXPECT_EQ(a.dropped, 0u);
  EXPECT_EQ(a.total_points, 2u);
  EXPECT_EQ(snapshot.sim.at("b").total_points, 1u);
}

TEST(SeriesRecorderTest, EvictsOldestOnceFullAndCountsDropped) {
  SeriesRecorder recorder(/*capacity=*/3);
  for (int i = 0; i < 5; ++i) {
    recorder.Append("ring", SeriesClock::kSim, i, i * 10.0);
  }
  const SeriesSnapshot snapshot = recorder.Snapshot();
  const SeriesData& ring = snapshot.sim.at("ring");
  // Oldest-first window: points 2, 3, 4 survive; 0 and 1 were evicted.
  ASSERT_EQ(ring.points.size(), 3u);
  EXPECT_EQ(ring.points[0], (SeriesPoint{2.0, 20.0}));
  EXPECT_EQ(ring.points[1], (SeriesPoint{3.0, 30.0}));
  EXPECT_EQ(ring.points[2], (SeriesPoint{4.0, 40.0}));
  EXPECT_EQ(ring.dropped, 2u);
  EXPECT_EQ(ring.total_points, 5u);
  EXPECT_EQ(ring.points.size() + ring.dropped, ring.total_points);
}

TEST(SeriesRecorderTest, ClockDomainIsPinnedByFirstAppend) {
  SeriesRecorder recorder;
  recorder.Append("pinned", SeriesClock::kSim, 1.0, 1.0);
  // A later append claiming a different clock reuses the pinned domain rather than
  // splitting one series across the two snapshot sections.
  recorder.Append("pinned", SeriesClock::kHost, 2.0, 2.0);
  const SeriesSnapshot snapshot = recorder.Snapshot();
  EXPECT_TRUE(snapshot.host.empty());
  EXPECT_EQ(snapshot.sim.at("pinned").points.size(), 2u);
}

TEST(SeriesRecorderTest, HostSeriesAreSegregated) {
  SeriesRecorder recorder;
  recorder.Append("sim.counter", SeriesClock::kSim, 1.0, 1.0);
  recorder.Append("host.rate", SeriesClock::kHost, 0.5, 100.0);
  const SeriesSnapshot snapshot = recorder.Snapshot();
  EXPECT_EQ(snapshot.sim.count("sim.counter"), 1u);
  EXPECT_EQ(snapshot.host.count("host.rate"), 1u);
  EXPECT_EQ(snapshot.sim.count("host.rate"), 0u);
}

TEST(SeriesRecorderTest, ClearEmptiesEverything) {
  SeriesRecorder recorder;
  recorder.Append("a", SeriesClock::kSim, 1.0, 1.0);
  recorder.Clear();
  EXPECT_TRUE(recorder.Snapshot().empty());
}

TEST(SeriesJsonTest, IncludeHostFlagExcludesOnlyHostSection) {
  SeriesRecorder recorder;
  recorder.Append("sim.counter", SeriesClock::kSim, 1.0, 1.0);
  recorder.Append("host.rate", SeriesClock::kHost, 0.5, 100.0);
  const SeriesSnapshot snapshot = recorder.Snapshot();
  std::ostringstream with_host;
  WriteSeriesJson(with_host, snapshot, /*include_host=*/true);
  std::ostringstream without_host;
  WriteSeriesJson(without_host, snapshot, /*include_host=*/false);
  EXPECT_NE(with_host.str().find("host.rate"), std::string::npos);
  EXPECT_EQ(without_host.str().find("host.rate"), std::string::npos);
  EXPECT_NE(without_host.str().find("sim.counter"), std::string::npos);
}

// --- Engine determinism: the acceptance bar -------------------------------------------

constexpr uint64_t kFleetSize = 200000;
constexpr uint64_t kFleetSeed = 20260805;

class SeriesDeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { suite_ = new TestSuite(TestSuite::BuildFull()); }
  static void TearDownTestSuite() {
    delete suite_;
    suite_ = nullptr;
  }

  // One generate+screen pass with a series sink attached to both stages, rendered as the
  // deterministic (sim-only) JSON document. The bytes ARE the contract.
  static std::string MaterializedSeriesJson(int threads) {
    SeriesRecorder recorder;
    PopulationConfig population;
    population.processor_count = kFleetSize;
    population.seed = kFleetSeed;
    population.threads = threads;
    population.series = &recorder;
    const FleetPopulation fleet = FleetPopulation::Generate(population);
    ScreeningPipeline pipeline(suite_);
    ScreeningConfig screening;
    screening.threads = threads;
    screening.series = &recorder;
    pipeline.Run(fleet, screening);
    std::ostringstream out;
    WriteSeriesJson(out, recorder.Snapshot(), /*include_host=*/false);
    return out.str();
  }

  static std::string StreamingSeriesJson(int threads) {
    SeriesRecorder recorder;
    PopulationConfig population;
    population.processor_count = kFleetSize;
    population.seed = kFleetSeed;
    population.threads = threads;
    population.series = &recorder;
    ScreeningPipeline pipeline(suite_);
    ScreeningConfig screening;
    screening.threads = threads;
    screening.series = &recorder;
    FleetShardStream stream(population);
    StreamingScreen screen(&pipeline, screening);
    stream.Drive({&screen});
    std::ostringstream out;
    WriteSeriesJson(out, recorder.Snapshot(), /*include_host=*/false);
    return out.str();
  }

  static std::string ScrubSeriesJson(int threads) {
    SeriesRecorder recorder;
    ScrubConfig config;
    config.population.processor_count = 50'000;
    config.population.seed = 2024;
    config.population.threads = threads;
    config.threads = threads;
    config.budget_fraction = 2e-5;
    config.horizon_months = 4.0;
    config.epoch_months = 1.0;
    config.max_cases_per_round = 8;
    config.workload_sample_hours = 0.02;
    config.series = &recorder;
    FleetScrubber scrubber(suite_);
    scrubber.Run(config);
    std::ostringstream out;
    WriteSeriesJson(out, recorder.Snapshot(), /*include_host=*/false);
    return out.str();
  }

  static TestSuite* suite_;
};

TestSuite* SeriesDeterminismTest::suite_ = nullptr;

TEST_F(SeriesDeterminismTest, ScreeningSeriesIsThreadCountInvariant) {
  const std::string one = MaterializedSeriesJson(1);
  EXPECT_EQ(one, MaterializedSeriesJson(2));
  EXPECT_EQ(one, MaterializedSeriesJson(8));
}

TEST_F(SeriesDeterminismTest, StreamingSeriesMatchesMaterialized) {
  const std::string materialized = MaterializedSeriesJson(1);
  EXPECT_EQ(materialized, StreamingSeriesJson(1));
  EXPECT_EQ(materialized, StreamingSeriesJson(2));
  EXPECT_EQ(materialized, StreamingSeriesJson(8));
}

TEST_F(SeriesDeterminismTest, ScreeningSeriesIsNotVacuous) {
  const std::string document = MaterializedSeriesJson(2);
  // Both stages sampled: the generator's trajectory and the screen's.
  EXPECT_NE(document.find("fleet.generate.faulty"), std::string::npos);
  EXPECT_NE(document.find("screening.tested"), std::string::npos);
  EXPECT_NE(document.find("screening.detected"), std::string::npos);
  EXPECT_NE(document.find("screening.escapes"), std::string::npos);
}

TEST_F(SeriesDeterminismTest, ScrubSeriesIsThreadCountInvariant) {
  const std::string one = ScrubSeriesJson(1);
  EXPECT_EQ(one, ScrubSeriesJson(2));
  EXPECT_EQ(one, ScrubSeriesJson(8));
  EXPECT_NE(one.find("scrub.budget"), std::string::npos);
  EXPECT_NE(one.find("scrub.detections"), std::string::npos);
}

// An attached EngineContext is the fallback sink when the config carries none (the
// config wins when both are set) -- the same pinning discipline metrics/trace use.
TEST_F(SeriesDeterminismTest, ContextAttachmentFeedsSeries) {
  SeriesRecorder recorder;
  EngineOptions options;
  options.threads = 2;
  options.env_overrides = false;
  options.series = &recorder;
  EngineContext context(options);
  PopulationConfig population;
  population.processor_count = 50'000;
  population.seed = kFleetSeed;
  const FleetPopulation fleet = FleetPopulation::Generate(population, context);
  ScreeningPipeline pipeline(suite_);
  pipeline.Run(fleet, ScreeningConfig{}, context);
  const SeriesSnapshot snapshot = recorder.Snapshot();
  EXPECT_EQ(snapshot.sim.count("fleet.generate.faulty"), 1u);
  EXPECT_EQ(snapshot.sim.count("screening.tested"), 1u);
}

}  // namespace
}  // namespace sdc
