// Farron end-to-end: protect an application running on a faulty processor.
//
//   $ ./farron_protection [cpu_id]     (default MIX1)
//
// The full Figure 10 workflow: pre-production adequate testing seeds suspected priorities
// and masks apparently-defective cores; the online state runs prioritized regular tests and
// watches core temperatures, backing the workload off when it crosses the adaptive
// boundary; the suspected state performs targeted analysis and fine-grained decommission.

#include <iostream>

#include "src/common/table.h"
#include "src/farron/baseline.h"
#include "src/farron/farron.h"
#include "src/farron/protection.h"

int main(int argc, char** argv) {
  using namespace sdc;
  const std::string cpu_id = argc > 1 ? argv[1] : "FPU1";

  const TestSuite suite = TestSuite::BuildFull();
  const FaultyProcessorInfo info = FindInCatalog(cpu_id);
  std::cout << "=== protecting an application on faulty processor " << cpu_id << " ("
            << info.arch << ", " << info.spec.physical_cores << " cores) ===\n\n";

  FaultyMachine machine(info, 7);
  FarronConfig config;
  Farron farron(&suite, &machine, config);

  // --- Pre-production state: adequate testing. ---
  std::cout << "[pre-production] full-suite adequate test...\n";
  const FarronRoundSummary pre_production = farron.RunPreProduction();
  std::cout << "  errors: " << pre_production.report.total_errors() << ", failing cases: "
            << pre_production.report.failed_testcase_ids().size() << "\n";
  std::cout << "  masked cores:";
  for (int pcore : pre_production.newly_masked_cores) {
    std::cout << " " << pcore;
  }
  std::cout << "\n  processor deprecated: "
            << (pre_production.processor_deprecated ? "yes" : "no") << ", usable cores: "
            << farron.pool().UsableCores().size() << "/" << info.spec.physical_cores
            << "\n\n";
  if (pre_production.processor_deprecated) {
    std::cout << "more than two defective cores -- the whole part is withdrawn "
                 "(Observation 4 policy); try FPU1 or SIMD1 for the fine-grained path\n";
    return 0;
  }

  // --- Online state: the application runs under temperature control, preferring the
  //     (now masked) defective core's slot -- the pool reroutes it. ---
  const int defective_pcore =
      pre_production.newly_masked_cores.empty() ? 0 : pre_production.newly_masked_cores[0];
  std::cout << "[online] application (arctangent-heavy HPC kernel) for 4 hours...\n";
  WorkloadSpec spec;
  spec.kernel_case_index = static_cast<size_t>(suite.IndexOf("lib.math.fp_arctan.f64.n256"));
  spec.base_utilization = 0.47;
  spec.burst_probability = 3e-4;
  spec.burst_seconds = 10.0;
  spec.preferred_pcore = defective_pcore;
  const ProtectionReport protection =
      SimulateProtectedWorkload(farron, machine, suite, spec, 4.0, /*protect=*/true);
  std::cout << "  SDC events reaching the application: " << protection.sdc_events << "\n";
  std::cout << "  workload backoff: " << FormatDouble(protection.BackoffSecondsPerHour(), 2)
            << " s/hour over " << protection.backoff_engagements
            << " engagements (paper: 0.864 s/hour)\n";
  std::cout << "  hottest core: " << FormatDouble(protection.max_temperature, 1)
            << " C, boundary now " << FormatDouble(protection.final_boundary, 1) << " C\n\n";

  // --- Online state: one prioritized regular round. ---
  std::cout << "[online] prioritized regular test round...\n";
  const FarronRoundSummary round = farron.RunRegularRound({});
  std::cout << "  round duration: " << FormatDouble(round.plan_seconds / 3600.0, 2)
            << " h (baseline: "
            << FormatDouble(BaselinePolicy(&suite, BaselineConfig()).RoundDurationSeconds() /
                                3600.0, 2)
            << " h); test overhead " << FormatPercent(farron.TestOverhead(), 3) << "\n";
  std::cout << "  suspected testcases tracked: "
            << farron.priorities().CountWithPriority(TestPriority::kSuspected) << "\n\n";

  // --- The counterfactual: no screening, no masking, no temperature control -- and the
  //     scheduler happens to place the application on the defective core. ---
  std::cout << "[counterfactual] same workload, no mitigation, on the defective core...\n";
  FaultyMachine unprotected(info, 7);
  Farron idle(&suite, &unprotected, config);
  const ProtectionReport bare =
      SimulateProtectedWorkload(idle, unprotected, suite, spec, 4.0, /*protect=*/false);
  std::cout << "  SDC events reaching the application: " << bare.sdc_events
            << " (hottest core " << FormatDouble(bare.max_temperature, 1) << " C)\n";
  return 0;
}
