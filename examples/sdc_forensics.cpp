// SDC forensics: the debugging story of Sections 2.2 / 4.1 / 5, replayed end to end.
//
//   $ ./sdc_forensics
//
// A storage service keeps reporting checksum mismatches on one machine. This example walks
// the investigation: (1) reproduce the symptom at application level, (2) run the detection
// toolchain, (3) narrow down the suspect instruction with the statistical op-usage study,
// (4) mine bitflip patterns, and (5) map the temperature response to classify the defect as
// apparent or tricky.

#include <iostream>
#include <vector>

#include "src/analysis/bitflip.h"
#include "src/analysis/patterns.h"
#include "src/analysis/repro.h"
#include "src/common/table.h"
#include "src/fault/catalog.h"
#include "src/integrity/crc32.h"

int main() {
  using namespace sdc;
  const TestSuite suite = TestSuite::BuildFull();

  // The suspect machine: MIX1 (we of course pretend not to know that).
  FaultyMachine machine(FindInCatalog("MIX1"), 99);
  machine.cpu().SetTimeScale(1e6);
  machine.SetAllCoreUtilization(0.9);
  machine.cpu().thermal().SettleToSteadyState(
      std::vector<double>(machine.cpu().spec().physical_cores, 0.9));

  // --- 1. The symptom: the write path's checksum disagrees with the reader's. ---
  std::cout << "[symptom] storage write path, 2000 blocks:\n";
  Rng rng(5);
  int mismatches = 0;
  std::vector<uint8_t> block(4096);
  for (int i = 0; i < 2000; ++i) {
    for (auto& byte : block) {
      byte = static_cast<uint8_t>(rng.Next());
    }
    const uint32_t stored = Crc32VectorOnProcessor(machine.cpu(), 0, block);
    if (stored != Crc32(block)) {
      ++mismatches;
    }
    machine.cpu().AdvanceSeconds(0.05);
  }
  std::cout << "  " << mismatches
            << " invalid-data reports -- the data was fine; the checksum unit was not\n\n";

  // --- 2. Run the detection toolchain on the suspect. ---
  std::cout << "[toolchain] full-suite run...\n";
  TestFramework framework(&suite);
  TestRunConfig config;
  config.time_scale = 1e6;
  config.seed = 31;
  const RunReport report = framework.RunPlan(machine, framework.EqualPlan(20.0), config);
  std::cout << "  " << report.failed_testcase_ids().size() << " of " << suite.size()
            << " testcases failed, " << report.total_errors() << " errors\n\n";

  // --- 3. Narrow the suspect instructions (the Pin-style statistical study). ---
  std::cout << "[suspects] op kinds ranked by exclusive association with failures:\n";
  const std::vector<SuspectScore> suspects = RankSuspectOps(report);
  TextTable suspect_table({"op", "score", "used by failed", "used by passed"});
  for (size_t i = 0; i < std::min<size_t>(5, suspects.size()); ++i) {
    suspect_table.AddRow({OpKindName(suspects[i].op), FormatDouble(suspects[i].score, 3),
                          FormatPercent(suspects[i].failed_usage, 1),
                          FormatPercent(suspects[i].passed_usage, 1)});
  }
  suspect_table.Print(std::cout);

  // --- 4. Bitflip structure of the corrupted values. ---
  const BitflipStats stats = AnalyzeBitflips(report.records, DataType::kUInt32);
  const PatternAnalysis patterns = MinePatterns(report.records, 0.05);
  std::cout << "\n[bitflips] ui32 records: " << stats.record_count << ", zero->one share "
            << FormatPercent(stats.ZeroToOneFraction(), 1) << ", "
            << patterns.patterns.size() << " recurring mask(s) covering "
            << FormatPercent(patterns.patterned_record_fraction, 1) << " of records\n";

  // --- 5. Temperature response of the nastiest setting (testcase "C" behaviour). ---
  std::cout << "\n[temperature] vector-CRC setting vs pinned core temperature:\n";
  FaultyMachine probe(FindInCatalog("MIX1"), 100);
  const int index = suite.IndexOf("lib.crc32.vector.b4096");
  TextTable sweep_table({"temperature (C)", "errors/min"});
  std::vector<TemperaturePoint> points;
  for (double temperature : {55.0, 59.5, 64.0, 68.0, 72.0, 76.0}) {
    const double frequency = MeasureOccurrenceFrequency(
        probe, framework, static_cast<size_t>(index), 0, temperature, 50000.0, 17,
        /*time_scale=*/1e7);
    sweep_table.AddRow({FormatDouble(temperature, 1), FormatDouble(frequency, 4)});
    points.push_back({temperature, frequency});
  }
  sweep_table.Print(std::cout);
  const LinearFit fit = FitLogFrequencyVsTemperature(points);
  std::cout << "log-linear fit slope " << FormatDouble(fit.slope, 3) << " decades/C (r="
            << FormatDouble(fit.r, 3) << ")\n";
  std::cout << "\nverdict: tricky, temperature-gated defect in the vector-CRC path -- a\n"
               "candidate for Farron's temperature control rather than test-only coverage.\n";
  return 0;
}
