// Fleet screening: generate a production CPU population, push it through the four-stage
// screening pipeline of Figure 1 (factory -> datacenter -> re-install -> regular), and
// summarize who was caught where -- the workflow behind Tables 1 and 2.
//
//   $ ./fleet_screening [processor_count]

#include <cstdlib>
#include <iostream>

#include "src/common/stats.h"
#include "src/common/table.h"
#include "src/fleet/pipeline.h"
#include "src/fleet/population.h"
#include "src/fleet/stats.h"

int main(int argc, char** argv) {
  using namespace sdc;

  PopulationConfig population_config;
  population_config.processor_count = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 250000;
  std::cout << "generating a fleet of " << population_config.processor_count
            << " processors across " << kArchCount << " micro-architectures...\n";
  const FleetPopulation fleet = FleetPopulation::Generate(population_config);
  std::cout << fleet.faulty_count() << " carry latent silicon defects ("
            << FormatPermyriad(static_cast<double>(fleet.faulty_count()) /
                               static_cast<double>(population_config.processor_count))
            << " true prevalence)\n\n";

  const TestSuite suite = TestSuite::BuildFull();
  ScreeningPipeline pipeline(&suite);
  const ScreeningStats stats = pipeline.Run(fleet, ScreeningConfig());

  TextTable table({"stage", "detections", "rate"});
  for (int stage = 0; stage < kStageCount; ++stage) {
    table.AddRow({StageName(static_cast<TestStage>(stage)),
                  std::to_string(stats.detected_by_stage[stage]),
                  FormatPermyriad(stats.StageRate(static_cast<TestStage>(stage)))});
  }
  table.AddRow({"total", std::to_string(stats.total_detected()),
                FormatPermyriad(stats.TotalRate())});
  table.Print(std::cout);

  std::cout << "\nescaped every stage: " << stats.faulty - stats.total_detected()
            << " faulty parts (tricky trigger conditions or uncovered scenarios)\n";

  // What months do regular tests catch their parts in? (wear-out onset + leftovers)
  Histogram months(0.0, 33.0, 11);
  for (const ProcessorOutcome& outcome : stats.detections) {
    if (outcome.stage == TestStage::kRegular) {
      months.Add(outcome.month);
    }
  }
  std::cout << "\nregular-test detections by month in fleet:\n";
  for (size_t bin = 0; bin < months.bin_count(); ++bin) {
    if (months.count(bin) > 0) {
      std::cout << "  month ~" << months.BinCenter(bin) << ": " << months.count(bin)
                << "\n";
    }
  }

  // Which testcases earned their keep? (Observation 11)
  const TestcaseEffectiveness effectiveness =
      ComputeTestcaseEffectiveness(suite, fleet, ScreeningConfig().stages[3]);
  std::cout << "\ntestcase effectiveness: " << effectiveness.effective_testcases << " of "
            << effectiveness.total_testcases
            << " ever detect anything -- prioritize those (Farron's 'active' list)\n";
  return 0;
}
