// Tolerance survey: run every Section 6.2 technique against the same defective processor
// and watch what each one catches -- then protect the same workload the Farron way
// (conditions, not datapath) and compare, with the telemetry log as the audit trail.
//
//   $ ./tolerance_survey

#include <iostream>

#include "src/common/table.h"
#include "src/farron/farron.h"
#include "src/farron/protection.h"
#include "src/telemetry/event_log.h"
#include "src/tolerance/evaluation.h"
#include "src/tolerance/selective.h"

int main() {
  using namespace sdc;

  // The threat: FPU1's arctangent defect, apparent at production temperatures.
  const FaultyProcessorInfo info = FindInCatalog("FPU1");
  const int bad_pcore = info.defects.front().affected_pcores.front();
  const int bad_lcore = bad_pcore * info.spec.threads_per_core;
  const int shadow_lcore = ((bad_pcore + 1) % info.spec.physical_cores) *
                           info.spec.threads_per_core;
  std::cout << "threat: " << info.cpu_id << ", defective pcore " << bad_pcore << "\n\n";

  constexpr uint64_t kTrials = 20000;
  TextTable table({"technique", "corruptions", "detected", "silent escapes", "cost"});
  auto add = [&table](const TechniqueEvaluation& evaluation) {
    table.AddRow({evaluation.technique, std::to_string(evaluation.corruptions),
                  FormatPercent(evaluation.DetectionRate(), 1),
                  std::to_string(evaluation.silent_escapes()),
                  FormatDouble(evaluation.cost_factor, 2) + "x"});
  };
  {
    FaultyMachine machine(info, 1);
    add(EvaluateChecksumAfterCompute(machine, bad_lcore, kTrials, 2));
  }
  {
    FaultyMachine machine(info, 3);
    add(EvaluateDmr(machine, bad_lcore, shadow_lcore, kTrials, 4));
  }
  {
    FaultyMachine machine(info, 5);
    add(EvaluateSelectiveGuard(machine, bad_lcore, shadow_lcore, kTrials, 6));
  }
  {
    FaultyMachine machine(info, 7);
    add(EvaluateRangeDetector(machine, bad_lcore, DataType::kFloat64, kTrials, 8));
  }
  table.Print(std::cout);

  // The Farron alternative: attack the conditions. Mask the core after detection and let
  // the application run clean at 1x datapath cost.
  std::cout << "\nFarron's answer (attack conditions, not the datapath):\n";
  const TestSuite suite = TestSuite::BuildFull();
  FaultyMachine machine(info, 9);
  FarronConfig config;
  Farron farron(&suite, &machine, config);
  EventLog log;
  farron.SetEventLog(&log);
  farron.RunPreProduction();
  WorkloadSpec spec;
  spec.kernel_case_index = static_cast<size_t>(suite.IndexOf("lib.math.fp_arctan.f64.n256"));
  spec.base_utilization = 0.5;
  spec.preferred_pcore = bad_pcore;  // the scheduler tries, the pool reroutes
  const ProtectionReport report =
      SimulateProtectedWorkload(farron, machine, suite, spec, 2.0, true);
  std::cout << "  defective core masked after pre-production; app SDC events over 2 h: "
            << report.sdc_events << "; datapath cost: 1.00x\n\n";
  std::cout << "telemetry (" << log.total_recorded() << " events, newest window):\n";
  size_t shown = 0;
  for (const Event& event : log.RetainedEvents()) {
    if (event.kind != EventKind::kSdcDetected || shown < 3) {
      std::cout << "  [" << FormatDouble(event.time_seconds, 0) << "s] "
                << EventKindName(event.kind) << " " << event.subject << "\n";
    }
    if (event.kind == EventKind::kSdcDetected) {
      ++shown;
    }
    if (shown > 8) {
      break;
    }
  }
  std::cout << "  ... sdc-detected events total: "
            << log.CountOf(EventKind::kSdcDetected) << "\n";
  return 0;
}
