// Quickstart: build a simulated machine with a known-faulty processor from the study
// catalog, run a slice of the SDC test toolchain against it, and look at what corrupted.
//
//   $ ./quickstart
//
// Walks through the core objects in dependency order: ProcessorSpec/FaultyMachine (the
// simulated CPU with defects wired in), TestSuite/TestFramework (the 633-testcase
// toolchain), and SdcRecord (one observed silent corruption).

#include <iostream>

#include "src/fault/catalog.h"
#include "src/fault/machine.h"
#include "src/toolchain/framework.h"

int main() {
  using namespace sdc;

  // 1. A healthy machine: the toolchain never reports an error on it.
  FaultyMachine healthy(MakeArchSpec("M2"));
  std::cout << "healthy machine: " << healthy.cpu().spec().physical_cores
            << " cores at " << healthy.cpu().spec().frequency_ghz << " GHz, idle "
            << healthy.cpu().thermal().IdleTemperature() << " C\n";

  // 2. A faulty machine: FPU1 from the paper's Table 3 -- one defective core whose
  //    arctangent path silently corrupts float64/float64x results.
  const FaultyProcessorInfo info = FindInCatalog("FPU1");
  FaultyMachine faulty(info, /*seed=*/2024);
  std::cout << "faulty machine: " << info.cpu_id << " (" << info.arch << ", "
            << info.age_years << " years in fleet, " << info.defects.size()
            << " defect(s), type " << SdcTypeName(info.sdc_type()) << ")\n\n";

  // 3. Drive both through the toolchain. BuildSampled keeps the demo fast; production
  //    screening uses BuildFull()'s 633 cases.
  const TestSuite suite = TestSuite::BuildFull();
  TestFramework framework(&suite);
  TestRunConfig config;
  config.time_scale = 1e6;   // each simulated op stands for a million executions
  config.seed = 1;

  std::vector<TestPlanEntry> plan;
  for (size_t i = 0; i < suite.size(); i += 8) {  // every 8th case, 10 s each
    plan.push_back({i, 10.0});
  }

  const RunReport healthy_report = framework.RunPlan(healthy, plan, config);
  std::cout << "healthy run:  " << healthy_report.total_errors() << " errors in "
            << healthy_report.results.size() << " testcases\n";

  const RunReport faulty_report = framework.RunPlan(faulty, plan, config);
  std::cout << "faulty run:   " << faulty_report.total_errors() << " errors, failing:";
  for (const std::string& id : faulty_report.failed_testcase_ids()) {
    std::cout << " " << id;
  }
  std::cout << "\n\n";

  // 4. Inspect a corruption: expected vs actual bits of one silent error.
  if (!faulty_report.records.empty()) {
    const SdcRecord& record = faulty_report.records.front();
    std::cout << "first SDC record:\n";
    std::cout << "  testcase:    " << record.testcase_id << "\n";
    std::cout << "  core:        pcore " << record.pcore << " at "
              << record.temperature << " C\n";
    std::cout << "  datatype:    " << DataTypeName(record.type) << "\n";
    std::cout << "  expected:    " << DoubleFromBits(record.expected) << "\n";
    std::cout << "  actual:      " << DoubleFromBits(record.actual) << "\n";
    std::cout << "  flipped bits " << record.FlipMask().Popcount() << " (relative loss "
              << RelativePrecisionLoss(record.type, record.expected, record.actual)
              << ")\n";
  }
  return 0;
}
