// Streaming fleet pipeline (docs/streaming.md): run the whole Tables 1-2 workflow --
// generation, four-stage screening, capacity retention, testcase effectiveness, wear-out
// exposure -- as ONE fused pass over shard-sized buffers, without ever materializing the
// fleet. Peak scratch is O(threads x shard) bytes no matter how many processors stream
// past, and every number below is byte-identical to what the materialized workflow in
// fleet_screening.cpp produces for the same size and seed.
//
//   $ ./streaming_fleet [processor_count]

#include <cstdlib>
#include <iostream>

#include "src/common/table.h"
#include "src/farron/longitudinal.h"
#include "src/fleet/capacity.h"
#include "src/fleet/pipeline.h"
#include "src/fleet/population.h"
#include "src/fleet/stats.h"
#include "src/fleet/stream.h"

int main(int argc, char** argv) {
  using namespace sdc;

  PopulationConfig population_config;
  population_config.processor_count =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 2'000'000;

  const TestSuite suite = TestSuite::BuildFull();
  ScreeningPipeline pipeline(&suite);
  const ScreeningConfig screening_config;

  // One stream, four consumers. StreamingScreen screens each shard in place; the
  // observers fold each shard's outcomes while its defect spans are still alive.
  FleetShardStream stream(population_config);
  StreamingScreen screen(&pipeline, screening_config);
  CapacityAccumulator capacity;
  WearoutExposureObserver exposure;
  screen.AddObserver(&capacity);
  screen.AddObserver(&exposure);
  EffectivenessAccumulator effectiveness(
      &suite, screening_config.stages[static_cast<size_t>(TestStage::kRegular)]);

  std::cout << "streaming " << population_config.processor_count << " processors through "
            << stream.shard_count() << " shards of " << kFleetShardGrain << "...\n";
  const StreamReport report = stream.Drive({&screen, &effectiveness});
  const ScreeningStats stats = screen.TakeStats();
  const CapacityReport capacity_report = capacity.TakeReport();
  const TestcaseEffectiveness effective = effectiveness.TakeResult();

  std::cout << "peak scratch: " << report.peak_scratch_bytes << " bytes across "
            << report.lanes << " lane(s) -- vs ~"
            << population_config.processor_count * 2 / 1024
            << " KiB of packed columns alone had the fleet been materialized\n\n";

  TextTable table({"stage", "detections", "rate"});
  for (int stage = 0; stage < kStageCount; ++stage) {
    table.AddRow({StageName(static_cast<TestStage>(stage)),
                  std::to_string(stats.detected_by_stage[stage]),
                  FormatPermyriad(stats.StageRate(static_cast<TestStage>(stage)))});
  }
  table.AddRow({"total", std::to_string(stats.total_detected()),
                FormatPermyriad(stats.TotalRate())});
  table.Print(std::cout);

  std::cout << "\ncapacity: baseline deprecation loses " << capacity_report.baseline_cores_lost
            << " cores, fine-grained masking loses "
            << capacity_report.fine_grained_cores_lost << " (saves "
            << capacity_report.cores_saved() << " of " << capacity_report.fleet_cores
            << ")\n";
  std::cout << "effectiveness: " << effective.effective_testcases << " of "
            << effective.total_testcases << " testcases ever detect anything\n";
  std::cout << "wear-out exposure: " << exposure.exposures().size()
            << " regular-round detections, mean window "
            << FormatDouble(exposure.MeanExposureMonths(), 2) << " months\n";
  return 0;
}
