#!/usr/bin/env python3
"""Acceptance check for `bench/micro_screening` (docs/performance.md).

Runs the bench at a small fleet size and asserts:
  * every non-comment stdout line is a valid JSON object;
  * the leading "env" line reports the resolved SIMD level, the forced-scalar build
    flag, and the host's hardware thread count;
  * all expected (bench, model, threads) rows -- including the generate
    cached/reference pair, the "generate_scalar" and "screen_scalar" rows, and the
    batched "screen_batch" K x threads matrix -- are present exactly once, in order,
    with positive throughput numbers;
  * the closing summary line reports a deterministic run (the binary itself exits
    non-zero when any path diverges bitwise -- this script double-checks the flag), a
    cached-vs-reference screening speedup > 1, a batch amortization at K=8 of at least
    MIN_BATCH_AMORTIZATION (the relative acceptance bound: one batched pass must beat
    8 independent passes by >= 2x; it holds in scalar builds too, because the shared
    work the batch amortizes -- the clean-path scan and the MatchingTestcases memo --
    exists at every dispatch level), and a blocked-vs-reference generate speedup of at
    least MIN_GENERATE_SPEEDUP (relative for the same flaky-host reason; the blocked
    generator's win -- bulk uniform fill, branchless classify, no per-draw weight
    re-summing -- also survives scalar dispatch, so one bound covers both CI legs).

Optionally, `--max-batch-ns X` also enforces the absolute bound: every K=8 batched row
must come in at or under X ns per processor-scenario. CI smoke runs skip it (shared
runners make absolute timings flaky); the checked-in bench/BENCH_screening.json matrix
records the real-host numbers against the ~1.2 ns target.

`--processors N` overrides the fleet size (default 50000). The summary's
series_overhead -- attached-SeriesRecorder screen wall over plain screen wall at one
thread -- is bounded at 1.02 (the <= 2% acceptance tax) when N >= 1M, where per-shard
sampling cost is amortized over real work; smoke sizes get a loose 1.25 bound because a
single scheduler tick moves a sub-millisecond ratio.
"""

import json
import subprocess
import sys

PROCESSOR_COUNT = 50000
REPEATS = 2
THREADS = (1, 2, 8)
BATCH_KS = (1, 2, 4, 8)
MIN_BATCH_AMORTIZATION = 2.0
# The blocked generator replaced a ~28.8 ns/processor loop with a ~8.7 ns one (3.2x on
# the reference host, bench/BENCH_screening.json); 2.5x leaves headroom for CI noise
# while still failing on any regression that would give back the win.
MIN_GENERATE_SPEEDUP = 2.5
# Live-telemetry tax: series sampling happens only at shard boundaries in the serial
# fold, so at fleet scale it must be in the noise.
MAX_SERIES_OVERHEAD_FLEET = 1.02
MAX_SERIES_OVERHEAD_SMOKE = 1.25
FLEET_SCALE = 1_000_000
REQUIRED_KEYS = {
    "bench", "model", "threads", "processors", "wall_seconds",
    "ns_per_processor", "fleets_per_second",
}
BATCH_KEYS = {
    "bench", "model", "threads", "k", "processors", "wall_seconds",
    "ns_per_processor_scenario",
}
ENV_KEYS = {"bench", "simd", "forced_scalar", "hardware_threads"}
SIMD_LEVELS = {"scalar", "sse2", "avx2", "neon"}


def expected_combinations():
    for threads in THREADS:
        yield ("generate", "cached", threads)
        yield ("generate", "reference", threads)
        yield ("generate_scalar", "cached", threads)
        for model in ("cached", "reference"):
            yield ("screen", model, threads)
            yield ("generate_screen", model, threads)
        yield ("screen_scalar", "cached", threads)
        yield ("screen_series", "cached", threads)
        for k in BATCH_KS:
            yield ("screen_batch", "cached", threads, k)


def main() -> int:
    args = sys.argv[1:]
    max_batch_ns = None
    if "--max-batch-ns" in args:
        flag = args.index("--max-batch-ns")
        max_batch_ns = float(args[flag + 1])
        del args[flag:flag + 2]
    processors = PROCESSOR_COUNT
    if "--processors" in args:
        flag = args.index("--processors")
        processors = int(args[flag + 1])
        del args[flag:flag + 2]
    if len(args) != 1:
        print(f"usage: {sys.argv[0]} <micro_screening-binary> [--max-batch-ns X] "
              f"[--processors N]",
              file=sys.stderr)
        return 2
    result = subprocess.run(
        [args[0], str(processors), str(REPEATS)],
        capture_output=True,
        text=True,
        check=True,  # the binary exits non-zero on any bitwise divergence
    )

    rows = []
    env = None
    summary = None
    batch_k8_ns = []
    for line in result.stdout.splitlines():
        if not line.strip() or line.startswith("#"):
            continue
        record = json.loads(line)  # every data line must parse on its own
        if record["bench"] == "env":
            assert env is None, "duplicate env line"
            assert not rows and summary is None, "env line must come first"
            assert set(record) == ENV_KEYS, sorted(set(record) ^ ENV_KEYS)
            assert record["simd"] in SIMD_LEVELS, record
            assert isinstance(record["forced_scalar"], bool), record
            assert record["hardware_threads"] >= 1, record
            env = record
            continue
        if record["bench"] == "summary":
            assert summary is None, "duplicate summary line"
            summary = record
            continue
        if record["bench"] == "screen_batch":
            assert set(record) == BATCH_KEYS, sorted(set(record) ^ BATCH_KEYS)
            assert record["processors"] == processors, record
            assert record["wall_seconds"] > 0.0, record
            assert record["ns_per_processor_scenario"] > 0.0, record
            if record["k"] == 8:
                batch_k8_ns.append(record["ns_per_processor_scenario"])
            rows.append((record["bench"], record["model"], record["threads"],
                         record["k"]))
            continue
        assert set(record) == REQUIRED_KEYS, sorted(set(record) ^ REQUIRED_KEYS)
        assert record["processors"] == processors, record
        assert record["wall_seconds"] > 0.0, record
        assert record["ns_per_processor"] > 0.0, record
        assert record["fleets_per_second"] > 0.0, record
        rows.append((record["bench"], record["model"], record["threads"]))

    assert env is not None, "missing env line"
    expected = list(expected_combinations())
    assert rows == expected, (
        f"combination mismatch:\n  got      {rows}\n  expected {expected}")

    assert summary is not None, "missing summary line"
    assert summary["deterministic"] is True, summary
    assert summary["screen_speedup_cached_vs_reference"] > 1.0, summary
    assert summary["screen_simd_speedup"] > 0.0, summary
    assert summary["batch_amortization_k8"] >= MIN_BATCH_AMORTIZATION, (
        f"batched pass amortizes only "
        f"{summary['batch_amortization_k8']:.2f}x over 8 independent runs "
        f"(acceptance bound: >= {MIN_BATCH_AMORTIZATION}x)")
    assert summary["generate_speedup_blocked_vs_reference"] >= MIN_GENERATE_SPEEDUP, (
        f"blocked generator is only "
        f"{summary['generate_speedup_blocked_vs_reference']:.2f}x the reference loop "
        f"(acceptance bound: >= {MIN_GENERATE_SPEEDUP}x)")
    max_series_overhead = (MAX_SERIES_OVERHEAD_FLEET if processors >= FLEET_SCALE
                          else MAX_SERIES_OVERHEAD_SMOKE)
    assert summary["series_overhead"] > 0.0, summary
    assert summary["series_overhead"] <= max_series_overhead, (
        f"attached SeriesRecorder costs {summary['series_overhead']:.4f}x the plain "
        f"screen at {processors} processors "
        f"(acceptance bound: <= {max_series_overhead}x)")
    if max_batch_ns is not None:
        assert batch_k8_ns, "no K=8 batched rows"
        worst = max(batch_k8_ns)
        assert worst <= max_batch_ns, (
            f"K=8 batched clean path at {worst:.2f} ns/processor-scenario "
            f"exceeds the {max_batch_ns} ns acceptance bound")
    print(f"ok: {len(rows)} bench rows on {env['simd']} "
          f"(forced_scalar={env['forced_scalar']}), deterministic, cached screen "
          f"{summary['screen_speedup_cached_vs_reference']:.2f}x the reference model, "
          f"blocked generate "
          f"{summary['generate_speedup_blocked_vs_reference']:.2f}x the reference loop, "
          f"K=8 batch {summary['batch_amortization_k8']:.2f}x over independent runs, "
          f"series tax {summary['series_overhead']:.4f}x "
          f"(bound {max_series_overhead}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
