#!/usr/bin/env python3
"""Acceptance check for `bench/micro_screening` (docs/performance.md).

Runs the bench at a small fleet size, asserts every non-comment stdout line is a valid
JSON object, that all expected (bench, model, threads) combinations are present exactly
once with positive throughput numbers, and that the closing summary line reports a
deterministic run (the binary itself exits non-zero when the cached and reference
models diverge -- this script double-checks the emitted flag).
"""

import json
import subprocess
import sys

PROCESSOR_COUNT = 50000
REPEATS = 2
THREADS = (1, 2, 8)
REQUIRED_KEYS = {
    "bench", "model", "threads", "processors", "wall_seconds",
    "ns_per_processor", "fleets_per_second",
}


def expected_combinations():
    for threads in THREADS:
        yield ("generate", "cached", threads)
        for model in ("cached", "reference"):
            yield ("screen", model, threads)
            yield ("generate_screen", model, threads)


def main() -> int:
    if len(sys.argv) != 2:
        print(f"usage: {sys.argv[0]} <micro_screening-binary>", file=sys.stderr)
        return 2
    result = subprocess.run(
        [sys.argv[1], str(PROCESSOR_COUNT), str(REPEATS)],
        capture_output=True,
        text=True,
        check=True,  # the binary exits non-zero on model divergence
    )

    rows = []
    summary = None
    for line in result.stdout.splitlines():
        if not line.strip() or line.startswith("#"):
            continue
        record = json.loads(line)  # every data line must parse on its own
        if record["bench"] == "summary":
            assert summary is None, "duplicate summary line"
            summary = record
            continue
        assert set(record) == REQUIRED_KEYS, sorted(set(record) ^ REQUIRED_KEYS)
        assert record["processors"] == PROCESSOR_COUNT, record
        assert record["wall_seconds"] > 0.0, record
        assert record["ns_per_processor"] > 0.0, record
        assert record["fleets_per_second"] > 0.0, record
        rows.append((record["bench"], record["model"], record["threads"]))

    expected = list(expected_combinations())
    assert rows == expected, (
        f"combination mismatch:\n  got      {rows}\n  expected {expected}")

    assert summary is not None, "missing summary line"
    assert summary["deterministic"] is True, summary
    assert summary["screen_speedup_cached_vs_reference"] > 1.0, summary
    print(f"ok: {len(rows)} bench rows, deterministic, cached screen "
          f"{summary['screen_speedup_cached_vs_reference']:.2f}x the reference model")
    return 0


if __name__ == "__main__":
    sys.exit(main())
