#!/usr/bin/env python3
"""Acceptance check for `sdcctl screen N --metrics-out -` (docs/observability.md).

Runs a screen with the metrics snapshot routed to stdout, asserts the stream is exactly
one parseable JSON document, and cross-checks the screening counters against the
arithmetic identities the pipeline guarantees (tested == fleet size, detected + escaped
== faulty, per-stage detections sum to the total).
"""

import json
import subprocess
import sys

PROCESSOR_COUNT = 20000
STAGES = ("factory", "datacenter", "re-install", "regular")


def main() -> int:
    if len(sys.argv) != 2:
        print(f"usage: {sys.argv[0]} <sdcctl-binary>", file=sys.stderr)
        return 2
    result = subprocess.run(
        [sys.argv[1], "screen", str(PROCESSOR_COUNT), "--metrics-out", "-"],
        capture_output=True,
        text=True,
        check=True,
    )
    snapshot = json.loads(result.stdout)  # must be a single valid document
    counters = snapshot["counters"]

    assert counters["screening.tested"] == PROCESSOR_COUNT, counters
    faulty = counters["screening.faulty"]
    detected = counters["screening.detected"]
    escaped = counters["screening.escaped"]
    assert detected + escaped == faulty, (detected, escaped, faulty)
    stage_total = sum(counters[f"screening.stage.{stage}.detected"] for stage in STAGES)
    assert stage_total == detected, (stage_total, detected)
    arch_tested = sum(
        value for name, value in counters.items()
        if name.startswith("screening.arch.") and name.endswith(".tested")
    )
    assert arch_tested == PROCESSOR_COUNT, arch_tested
    assert counters["fleet.generate.processors"] == PROCESSOR_COUNT, counters

    # Timers are present but flagged nondeterministic.
    for timer in snapshot["timers"].values():
        assert timer["nondeterministic"] is True, timer
    print("ok: metrics JSON parses and matches screening totals")
    return 0


if __name__ == "__main__":
    sys.exit(main())
