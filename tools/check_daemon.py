#!/usr/bin/env python3
"""Acceptance check for the sdcd campaign daemon (docs/daemon.md).

End to end through the real socket:

1. Byte-identity across interleaving: two campaigns submitted together (they overlap on
   the daemon's lane budget) return exactly the bytes the same specs return when run
   serially in the same daemon -- stats, metrics, and trace documents per scenario.
2. Byte-identity against one-shot mode: a daemon campaign's screening stats, metrics
   (minus wall-clock timers), and sim trace (minus host spans) equal an independent
   `sdcctl --stream ... export screening` run of the same fleet spec.
3. Cancellation: a cancelled campaign reaches a terminal state and serves no result.
4. Exit-status discipline: malformed specs and protocol misuse exit 2 through the
   client, runtime conditions (unknown id, not-done) exit 1 -- the same contract as the
   local CLI's strict operand parsing.
5. Observability: the id-less `status` daemon health line, the extended campaign status
   line (progress/detections/host timestamps), the `stats` live-series document (its
   screening.tested trajectory must end at the fleet size), and one `sdcctl top` poll
   showing every campaign.

Usage: check_daemon.py <sdcd-binary> <sdcctl-binary> [processors]
Default fleet size is 100,000; CI's release job runs 1,000,000.
"""

import json
import os
import socket as socketlib
import subprocess
import sys
import tempfile
import time

FLEET_SEED_A = 7
FLEET_SEED_B = 9
LANES_PER_CAMPAIGN = 2
DAEMON_LANES = 4


def client(ctl, socket, *args, expect=0):
    result = subprocess.run([ctl, "--socket", socket, *args],
                            capture_output=True, text=True)
    assert result.returncode == expect, (
        f"sdcctl {' '.join(args)}: exit {result.returncode}, expected {expect}\n"
        f"stderr: {result.stderr}")
    return result.stdout


def submit(ctl, socket, spec_tokens):
    out = client(ctl, socket, "submit", *spec_tokens).strip()
    assert out.startswith("ok id="), out
    return out[len("ok id="):]


def raw_request(socket_path, line):
    """One protocol request over a raw socket -- no fork, sub-millisecond round trip."""
    with socketlib.socket(socketlib.AF_UNIX, socketlib.SOCK_STREAM) as conn:
        conn.connect(socket_path)
        conn.sendall(line.encode() + b"\n")
        reply = b""
        while not reply.endswith(b"\n"):
            chunk = conn.recv(4096)
            assert chunk, f"connection closed mid-reply to {line!r}"
            reply += chunk
    return reply.decode().strip()


def fetch_outputs(ctl, socket, campaign_id, scenarios):
    """Waits for a campaign and returns its deterministic documents."""
    state = client(ctl, socket, "wait", campaign_id).strip()
    assert state == "ok state=done", f"campaign {campaign_id}: {state}"
    stats = [client(ctl, socket, "result", campaign_id, str(k))
             for k in range(scenarios)]
    metrics = client(ctl, socket, "metrics", campaign_id)
    trace = client(ctl, socket, "trace", campaign_id)
    return {"stats": stats, "metrics": metrics, "trace": trace}


def strip_host_events(trace_doc):
    """Drops host-pid (2) events: wall-clock spans, nondeterministic by contract."""
    doc = dict(trace_doc)
    doc["traceEvents"] = [e for e in trace_doc["traceEvents"] if e.get("pid") != 2]
    doc["hostEventsIncluded"] = False  # what remains is the include_host=false document
    return doc


def main() -> int:
    if len(sys.argv) < 3:
        print(f"usage: {sys.argv[0]} <sdcd-binary> <sdcctl-binary> [processors]",
              file=sys.stderr)
        return 2
    sdcd, ctl = sys.argv[1], sys.argv[2]
    processors = int(sys.argv[3]) if len(sys.argv) > 3 else 100_000

    workdir = tempfile.mkdtemp(prefix="sdcd-")
    socket = os.path.join(workdir, "sdcd.sock")
    daemon = subprocess.Popen([sdcd, "--socket", socket, "--lanes", str(DAEMON_LANES)],
                              stderr=subprocess.PIPE, text=True)
    try:
        deadline = time.time() + 10
        while True:
            if os.path.exists(socket) and subprocess.run(
                    [ctl, "--socket", socket, "ping"],
                    capture_output=True).returncode == 0:
                break
            assert time.time() < deadline, "sdcd did not come up within 10 s"
            assert daemon.poll() is None, f"sdcd died at startup: {daemon.stderr.read()}"
            time.sleep(0.05)

        spec_a = [f"name=a", f"processors={processors}", f"seed={FLEET_SEED_A}",
                  f"lanes={LANES_PER_CAMPAIGN}"]
        spec_b = [f"name=b", f"processors={processors}", f"seed={FLEET_SEED_B}",
                  f"lanes={LANES_PER_CAMPAIGN}", "sweep=seeds:2"]

        # 1. Submit both campaigns back to back: the 2+2 lane grants fit the budget of 4,
        # so they run concurrently. Then run the identical specs serially and require
        # every deterministic document to match byte for byte.
        id_a = submit(ctl, socket, spec_a)
        id_b = submit(ctl, socket, spec_b)
        overlapped_a = fetch_outputs(ctl, socket, id_a, 1)
        overlapped_b = fetch_outputs(ctl, socket, id_b, 2)
        serial_a = fetch_outputs(ctl, socket, submit(ctl, socket, spec_a), 1)
        serial_b = fetch_outputs(ctl, socket, submit(ctl, socket, spec_b), 2)
        assert overlapped_a == serial_a, "campaign a: overlapped != serial"
        assert overlapped_b == serial_b, "campaign b: overlapped != serial"

        # 2. Campaign a against the one-shot streaming CLI: same fleet spec, no daemon.
        one_shot = subprocess.run(
            [ctl, "--stream", "--threads", str(LANES_PER_CAMPAIGN),
             "--processors", str(processors), "--seed", str(FLEET_SEED_A),
             "--metrics-out", os.path.join(workdir, "m.json"),
             "--trace-out", os.path.join(workdir, "t.json"),
             "export", "screening"],
            capture_output=True, text=True, check=True)
        assert json.loads(one_shot.stdout) == json.loads(overlapped_a["stats"][0]), (
            "daemon stats != one-shot stats")
        with open(os.path.join(workdir, "m.json")) as f:
            one_shot_metrics = json.load(f)
        one_shot_metrics.pop("timers", None)  # wall clock, excluded by design
        daemon_metrics = json.loads(overlapped_a["metrics"])
        assert daemon_metrics == one_shot_metrics, (
            f"daemon metrics != one-shot metrics\n  daemon:   {daemon_metrics}\n"
            f"  one-shot: {one_shot_metrics}")
        with open(os.path.join(workdir, "t.json")) as f:
            one_shot_trace = strip_host_events(json.load(f))
        daemon_trace = json.loads(overlapped_a["trace"])
        assert daemon_trace == one_shot_trace, "daemon trace != one-shot sim trace"

        # 3. Cancellation: saturate the budget, cancel a queued campaign, and require a
        # terminal state with no result served. The submit/submit/cancel triple goes over
        # raw sockets: forked-client latency must not give the blocker (a sweep, several
        # fleet-scan passes of headroom) time to finish and let the victim run to done.
        blocker_spec = f"processors={processors} lanes=4 sweep=seeds:8"
        blocker_reply = raw_request(socket, f"submit {blocker_spec}")
        assert blocker_reply.startswith("ok id="), blocker_reply
        blocker = blocker_reply[len("ok id="):]
        victim_reply = raw_request(socket, f"submit processors={processors} lanes=4")
        assert victim_reply.startswith("ok id="), victim_reply
        victim = victim_reply[len("ok id="):]
        cancel_reply = raw_request(socket, f"cancel {victim}")
        assert cancel_reply == f"ok cancelled id={victim}", cancel_reply
        state = client(ctl, socket, "wait", victim).strip()
        assert state == "ok state=cancelled", state
        client(ctl, socket, "result", victim, expect=1)       # err not-done
        client(ctl, socket, "wait", blocker)

        # 4. Exit statuses through the client: usage errors 2, runtime errors 1.
        client(ctl, socket, "submit", expect=2)               # empty spec
        client(ctl, socket, "submit", "processors=10x", expect=2)
        client(ctl, socket, "frobnicate", expect=2)           # unknown verb
        client(ctl, socket, "status", "99999", expect=1)      # unknown id
        client(ctl, socket, "stats", expect=2)                # stats needs an id

        # 5. Observability surfaces. Id-less status is the daemon health line; a
        # campaign's status line carries progress/detections/timestamps; `stats` returns
        # the live series document; `top` renders one table per poll without a tty.
        health = client(ctl, socket, "status").strip()
        assert health.startswith("ok lanes="), health
        for token in ("queued=", "campaigns=", "events=", "dropped="):
            assert f" {token}" in health, health
        status_line = client(ctl, socket, "status", id_a).strip()
        for token in (" progress=1.0000", " detections=", " submitted=", " started=",
                      " finished="):
            assert token in status_line, status_line
        series_doc = json.loads(client(ctl, socket, "stats", id_a))
        assert "screening.tested" in series_doc["sim"], sorted(series_doc["sim"])
        assert "fleet.generate.faulty" in series_doc["sim"], sorted(series_doc["sim"])
        points = series_doc["sim"]["screening.tested"]["points"]
        assert points and points[-1][1] == processors, points[-1:]
        top = client(ctl, socket, "top", "--iterations", "1", "--interval-ms", "50")
        top_lines = top.splitlines()
        assert top_lines[0].startswith("sdcd "), top_lines[:1]
        assert top_lines[1].split()[:3] == ["id", "name", "state"], top_lines[1]
        done_rows = [line for line in top_lines if " done " in line]
        cancelled_rows = [line for line in top_lines if " cancelled " in line]
        assert len(done_rows) == 5, top       # overlapped+serial pairs and the blocker
        assert len(cancelled_rows) == 1, top  # the cancel victim

        client(ctl, socket, "shutdown")
        assert daemon.wait(timeout=10) == 0, "sdcd exited non-zero after shutdown"
        campaigns = 2 + 2 + 2  # overlapped pair, serial pair, cancel pair
        print(f"ok: {campaigns} campaigns over {socket}; overlapped == serial == "
              f"one-shot at {processors} processors; cancel + exit statuses verified")
        return 0
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()


if __name__ == "__main__":
    sys.exit(main())
