// sdcctl: command-line front end for the SDC study and mitigation library.
//
//   sdcctl catalog                                    list the 27 studied faulty processors
//   sdcctl suite [substring]                          list toolchain testcases
//   sdcctl sweep <cpu_id> [seconds_per_case]          adequate full-suite sweep of one part
//   sdcctl screen <processor_count>                   fleet screening summary (Tables 1-2)
//   sdcctl frequency <cpu_id> <testcase_id> <pcore> <tempC> [duration_s]
//                                                     occurrence frequency of one setting
//   sdcctl protect <cpu_id> [hours]                   Farron lifecycle on one part
//   sdcctl metrics [processor_count]                  generate+screen, metrics JSON only
//   sdcctl trace [processor_count]                    generate+screen, trace summary
//                                                     (per-stage span counts, sim-time
//                                                     attribution, slowest host spans)
//   sdcctl scrub [--budget F] [--hours H] [--fleet N] fleet-wide budgeted scrub: discovery
//                                                     screen plus the prioritized
//                                                     in-production epoch loop; scrub
//                                                     report JSON to stdout
//                                                     (docs/scrubbing.md)
//
// Global flags (accepted anywhere on the command line):
//   --threads N        worker count for the parallel hot paths: fleet generation and
//                      screening always honor it, and `sweep` / `export sweep:CPU` switch
//                      to per-entry parallel plan execution when it is given. N=0 means
//                      hardware concurrency; SDC_THREADS overrides N. Results are
//                      bit-identical at every thread count.
//   --metrics-out FILE attach a MetricsRegistry to the command's hot paths and write the
//                      snapshot JSON (docs/observability.md) to FILE after the command
//                      finishes. FILE may be `-` for stdout; the command's human-readable
//                      output then moves to stderr so stdout is exactly the JSON document.
//   --trace-out FILE   attach a TraceRecorder to the command's hot paths and write the
//                      Chrome/Perfetto trace-event JSON (docs/observability.md) to FILE
//                      after the command finishes. FILE may be `-` for stdout, with the
//                      same stdout/stderr discipline as --metrics-out.
//   --prom-out FILE    write the same metrics snapshot as Prometheus text exposition
//                      (docs/observability.md) instead of JSON; composes with
//                      --metrics-out (one run, both renderings) and follows the same
//                      `-`/file discipline.
//   --series-out FILE  attach a SeriesRecorder to the command's hot paths and write the
//                      time-series snapshot JSON (docs/observability.md) to FILE after
//                      the command finishes; same `-`/file discipline. Sim series are
//                      byte-identical at any --threads and across --stream.
//   --stream           run the fleet commands (screen, metrics, export screening) as a
//                      fused generate->screen shard pass (docs/streaming.md): peak memory
//                      is O(threads x shard) instead of O(fleet), and every emitted
//                      number is byte-identical to the materialized path.
//   --processors N     fleet-size override for the fleet commands; wins over positional
//                      counts and defaults, so 10^8-processor streaming runs are a flag.
//   --seed S           fleet generation seed override for the same commands.
//   --sweep SPEC       batched multi-scenario screening (docs/performance.md): `screen`
//                      evaluates K scenarios against ONE fleet in ONE pass and prints a
//                      per-scenario table. SPEC is `seeds:K` (K scenarios differing only
//                      in screening seed) or a scenario file: one scenario per line of
//                      whitespace-separated key=value pairs drawn from name, seed,
//                      period_months, horizon_months, regular_groups, and
//                      stage.<factory|datacenter|reinstall|regular>.<seconds|temp|catch>.
//                      Composes with --stream; every row is byte-identical to a separate
//                      single-scenario run.
//   --socket PATH      client mode: forward the command as a protocol verb to the sdcd
//                      daemon listening at PATH (docs/daemon.md) -- submit, status,
//                      stats, list, wait, cancel, result, metrics, trace, prom, ping,
//                      shutdown. Campaign results fetched this way are byte-identical to
//                      the one-shot streaming run of the same spec. The `top` command
//                      (client mode only) polls status+list and renders a refreshing
//                      per-campaign table: state, progress, detections, shards/s, ETA.
//
// Numeric operands are parsed strictly (src/common/parse.h): empty input, trailing
// garbage, overflow, and negative values where an unsigned count is expected are usage
// errors (exit 2), not silent zeroes.
//
// Everything is deterministic; see README.md for the library behind each command.

#include <unistd.h>

#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/analysis/repro.h"
#include "src/common/parse.h"
#include "src/common/table.h"
#include "src/daemon/client.h"
#include "src/daemon/spec.h"
#include "src/farron/baseline.h"
#include "src/farron/farron.h"
#include "src/farron/protection.h"
#include "src/fleet/pipeline.h"
#include "src/fleet/population.h"
#include "src/fleet/stream.h"
#include "src/report/exporters.h"
#include "src/scrub/scrubber.h"
#include "src/telemetry/event_log.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/series.h"
#include "src/telemetry/trace.h"

namespace sdc {
namespace {

struct GlobalOptions {
  int threads = 0;        // worker count for parallel paths (0 = hardware concurrency)
  bool threads_set = false;  // --threads given: sweeps opt into parallel plan entries
  std::string metrics_out;   // --metrics-out target; empty = no metrics export
  MetricsRegistry* metrics = nullptr;  // non-null when a snapshot will be written
  std::string trace_out;     // --trace-out target; empty = no trace export
  TraceRecorder* trace = nullptr;  // non-null when a trace will be written or summarized
  std::string prom_out;      // --prom-out target; empty = no Prometheus export
  std::string series_out;    // --series-out target; empty = no series export
  SeriesRecorder* series = nullptr;  // non-null when a series snapshot will be written
  bool stream = false;       // --stream: fused streaming pipeline for the fleet commands
  uint64_t processors = 0;   // --processors override for the fleet commands
  bool processors_set = false;
  uint64_t seed = 0;         // --seed override for fleet generation
  bool seed_set = false;
  std::string sweep_spec;    // --sweep operand; empty = single-scenario commands
  std::string socket_path;   // --socket operand; non-empty = sdcd client mode
};

// Applies the global fleet overrides to a population config. The --processors / --seed
// flags win over positional operands and built-in defaults, so large streaming runs never
// require recompiling config structs.
void ApplyFleetOverrides(PopulationConfig& config, const GlobalOptions& options) {
  if (options.processors_set) {
    config.processor_count = options.processors;
  }
  if (options.seed_set) {
    config.seed = options.seed;
  }
  config.threads = options.threads;
  config.metrics = options.metrics;
  config.trace = options.trace;
  config.series = options.series;
}

// Generate+screen through either path. Streaming fuses generation and screening into one
// shard pass with O(threads * shard) peak memory; the stats are byte-identical to the
// materialized path (docs/streaming.md), so every table below is mode-independent.
ScreeningStats GenerateAndScreen(const PopulationConfig& population_config,
                                 const ScreeningPipeline& pipeline,
                                 const ScreeningConfig& screening_config, bool stream) {
  if (stream) {
    FleetShardStream shard_stream(population_config);
    StreamingScreen screen(&pipeline, screening_config);
    shard_stream.Drive({&screen});
    return screen.TakeStats();
  }
  const FleetPopulation fleet = FleetPopulation::Generate(population_config);
  return pipeline.Run(fleet, screening_config);
}

// Usage error helper: strict-parsing failures report what was wrong and exit 2, the same
// status Usage() returns, so scripts can distinguish bad invocations from run failures.
int InvalidOperand(const char* what, const char* text) {
  std::cerr << "sdcctl: invalid " << what << ": '" << text << "'\n";
  return 2;
}

int CmdCatalog() {
  TextTable table({"cpu", "arch", "age(Y)", "cores", "defective", "type", "defects"});
  for (const FaultyProcessorInfo& info : StudyCatalog()) {
    std::string defect_ids;
    for (const Defect& defect : info.defects) {
      defect_ids += defect.id + " ";
    }
    table.AddRow({info.cpu_id, info.arch, FormatDouble(info.age_years, 2),
                  std::to_string(info.spec.physical_cores),
                  std::to_string(info.defective_pcore_count()),
                  SdcTypeName(info.sdc_type()), defect_ids});
  }
  table.Print(std::cout);
  return 0;
}

int CmdSuite(const std::string& filter) {
  const TestSuite suite = TestSuite::BuildFull();
  TextTable table({"id", "feature", "style", "mt"});
  size_t shown = 0;
  for (size_t i = 0; i < suite.size(); ++i) {
    const TestcaseInfo& info = suite.info(i);
    if (!filter.empty() && info.id.find(filter) == std::string::npos) {
      continue;
    }
    ++shown;
    table.AddRow({info.id, FeatureName(info.target), TestcaseStyleName(info.style),
                  info.multithreaded ? "yes" : ""});
  }
  table.Print(std::cout);
  std::cout << shown << " / " << suite.size() << " testcases\n";
  return 0;
}

int CmdSweep(const std::string& cpu_id, double seconds_per_case,
             const GlobalOptions& options) {
  if (!TryFindInCatalog(cpu_id).has_value()) {
    std::cerr << "unknown cpu id: " << cpu_id << " (see: sdcctl catalog)\n";
    return 1;
  }
  const TestSuite suite = TestSuite::BuildFull();
  TestFramework framework(&suite);
  FaultyMachine machine(FindInCatalog(cpu_id), 1);
  TestRunConfig config;
  config.time_scale = 2e7;
  config.simultaneous_cores = true;
  config.burn_in_seconds = 300.0;
  config.seed = 3;
  config.parallel_plan_entries = options.threads_set;
  config.threads = options.threads;
  config.metrics = options.metrics;
  config.trace = options.trace;
  std::cout << "sweeping " << cpu_id << " with " << suite.size() << " testcases at "
            << seconds_per_case << " s/case (hot environment)...\n";
  const RunReport report =
      framework.RunPlan(machine, framework.EqualPlan(seconds_per_case), config);
  TextTable table({"failing testcase", "errors", "freq (/min)"});
  for (const TestcaseResult& result : report.results) {
    if (result.failed()) {
      table.AddRow({result.testcase_id, std::to_string(result.errors),
                    FormatDouble(result.OccurrenceFrequencyPerMinute(), 3)});
    }
  }
  table.Print(std::cout);
  std::cout << report.failed_testcase_ids().size() << " failing testcases, "
            << report.total_errors() << " total errors\n";
  return 0;
}

// Batched `screen --sweep`: K scenarios against one fleet in one pass
// (ScreeningPipeline::RunBatch / batched StreamingScreen). The table rows are
// byte-identical to K separate `screen` runs; any attached metrics/trace sink receives
// every scenario's deltas.
int CmdScreenSweep(uint64_t processor_count, std::vector<SweepScenario> scenarios,
                   const GlobalOptions& options) {
  PopulationConfig population_config;
  population_config.processor_count = processor_count;
  ApplyFleetOverrides(population_config, options);
  const TestSuite suite = TestSuite::BuildFull();
  ScreeningPipeline pipeline(&suite);
  ScenarioBatch batch;
  batch.threads = options.threads;
  batch.scenarios.reserve(scenarios.size());
  for (SweepScenario& scenario : scenarios) {
    scenario.config.metrics = options.metrics;
    scenario.config.trace = options.trace;
    // The batch series contract samples scenario 0 only; setting every scenario keeps
    // this loop uniform and the extras are ignored.
    scenario.config.series = options.series;
    batch.scenarios.push_back(scenario.config);
  }
  std::vector<ScreeningStats> stats;
  if (options.stream) {
    FleetShardStream shard_stream(population_config);
    StreamingScreen screen(&pipeline, batch);
    shard_stream.Drive({&screen});
    stats = screen.TakeBatchStats();
  } else {
    const FleetPopulation fleet = FleetPopulation::Generate(population_config);
    stats = pipeline.RunBatch(fleet, batch);
  }
  TextTable table({"scenario", "seed", "period(m)", "factory", "datacenter", "re-install",
                   "regular", "total", "rate"});
  for (size_t k = 0; k < stats.size(); ++k) {
    const ScreeningConfig& config = batch.scenarios[k];
    table.AddRow({scenarios[k].name, std::to_string(config.seed),
                  FormatDouble(config.regular_period_months, 1),
                  std::to_string(stats[k].detected_by_stage[0]),
                  std::to_string(stats[k].detected_by_stage[1]),
                  std::to_string(stats[k].detected_by_stage[2]),
                  std::to_string(stats[k].detected_by_stage[3]),
                  std::to_string(stats[k].total_detected()),
                  FormatPermyriad(stats[k].TotalRate())});
  }
  table.Print(std::cout);
  return 0;
}

int CmdScreen(uint64_t processor_count, const GlobalOptions& options) {
  PopulationConfig population_config;
  population_config.processor_count = processor_count;
  ApplyFleetOverrides(population_config, options);
  const TestSuite suite = TestSuite::BuildFull();
  ScreeningPipeline pipeline(&suite);
  ScreeningConfig screening_config;
  screening_config.threads = options.threads;
  screening_config.metrics = options.metrics;
  screening_config.trace = options.trace;
  screening_config.series = options.series;
  const ScreeningStats stats =
      GenerateAndScreen(population_config, pipeline, screening_config, options.stream);
  TextTable table({"stage", "detections", "rate"});
  for (int stage = 0; stage < kStageCount; ++stage) {
    table.AddRow({StageName(static_cast<TestStage>(stage)),
                  std::to_string(stats.detected_by_stage[stage]),
                  FormatPermyriad(stats.StageRate(static_cast<TestStage>(stage)))});
  }
  table.AddRow({"total", std::to_string(stats.total_detected()),
                FormatPermyriad(stats.TotalRate())});
  table.Print(std::cout);
  return 0;
}

// Quiet generate+screen whose only product is the metric stream: the snapshot covers
// fleet.generate.* and screening.* for a standard run. Main routes the snapshot JSON to
// stdout (or wherever --metrics-out points).
int CmdMetrics(uint64_t processor_count, const GlobalOptions& options) {
  PopulationConfig population_config;
  population_config.processor_count = processor_count;
  ApplyFleetOverrides(population_config, options);
  const TestSuite suite = TestSuite::BuildFull();
  ScreeningPipeline pipeline(&suite);
  ScreeningConfig screening_config;
  screening_config.threads = options.threads;
  screening_config.metrics = options.metrics;
  screening_config.trace = options.trace;
  screening_config.series = options.series;
  (void)GenerateAndScreen(population_config, pipeline, screening_config, options.stream);
  return 0;
}

// Generate+screen whose human-readable product is the trace summary: per-category span
// counts, sim-time attribution, and the slowest host spans. Combine with --trace-out to
// also export the full Perfetto JSON.
int CmdTrace(uint64_t processor_count, const GlobalOptions& options) {
  PopulationConfig population_config;
  population_config.processor_count = processor_count;
  ApplyFleetOverrides(population_config, options);
  const TestSuite suite = TestSuite::BuildFull();
  ScreeningPipeline pipeline(&suite);
  ScreeningConfig screening_config;
  screening_config.threads = options.threads;
  screening_config.metrics = options.metrics;
  screening_config.trace = options.trace;
  screening_config.series = options.series;
  const ScreeningStats stats =
      GenerateAndScreen(population_config, pipeline, screening_config, options.stream);
  SummarizeTrace(options.trace->Snapshot()).DumpText(std::cout);
  std::cout << stats.provenance.size() << " detections, each with a provenance record\n";
  return 0;
}

int CmdFrequency(const std::string& cpu_id, const std::string& testcase_id, int pcore,
                 double temperature, double duration) {
  if (!TryFindInCatalog(cpu_id).has_value()) {
    std::cerr << "unknown cpu id: " << cpu_id << " (see: sdcctl catalog)\n";
    return 1;
  }
  const TestSuite suite = TestSuite::BuildFull();
  const int index = suite.IndexOf(testcase_id);
  if (index < 0) {
    std::cerr << "unknown testcase id: " << testcase_id << "\n";
    return 1;
  }
  TestFramework framework(&suite);
  FaultyMachine machine(FindInCatalog(cpu_id), 1);
  const double frequency = MeasureOccurrenceFrequency(
      machine, framework, static_cast<size_t>(index), pcore, temperature, duration, 17);
  std::cout << cpu_id << " / " << testcase_id << " / pcore" << pcore << " @ "
            << temperature << " C: " << FormatDouble(frequency, 5) << " errors/min over "
            << duration << " simulated seconds\n";
  return 0;
}

int CmdProtect(const std::string& cpu_id, double hours, const GlobalOptions& options) {
  const auto maybe_info = TryFindInCatalog(cpu_id);
  if (!maybe_info.has_value()) {
    std::cerr << "unknown cpu id: " << cpu_id << " (see: sdcctl catalog)\n";
    return 1;
  }
  const TestSuite suite = TestSuite::BuildFull();
  const FaultyProcessorInfo info = *maybe_info;
  FaultyMachine machine(info, 7);
  FarronConfig farron_config;
  farron_config.metrics = options.metrics;
  farron_config.trace = options.trace;
  Farron farron(&suite, &machine, farron_config);
  // Farron's lifecycle events land in the log; with a registry attached the log bridges
  // each kind into an "events.*" counter alongside the protection loop's own metrics.
  EventLog event_log;
  event_log.AttachMetrics(options.metrics);
  farron.SetEventLog(&event_log);
  std::cout << "[pre-production] testing " << cpu_id << "...\n";
  const FarronRoundSummary pre = farron.RunPreProduction();
  std::cout << "  failing cases: " << pre.report.failed_testcase_ids().size()
            << ", masked cores: " << pre.newly_masked_cores.size() << ", deprecated: "
            << (pre.processor_deprecated ? "yes" : "no") << "\n";
  if (pre.processor_deprecated) {
    return 0;
  }
  WorkloadSpec spec;
  spec.kernel_case_index =
      static_cast<size_t>(suite.IndexOf("lib.math.fp_arctan.f64.n256"));
  std::cout << "[online] protected workload for " << hours << " h...\n";
  const ProtectionReport report =
      SimulateProtectedWorkload(farron, machine, suite, spec, hours, true);
  std::cout << "  SDC events: " << report.sdc_events << ", backoff "
            << FormatDouble(report.BackoffSecondsPerHour(), 2) << " s/h, max temp "
            << FormatDouble(report.max_temperature, 1) << " C\n";
  const FarronRoundSummary round = farron.RunRegularRound({});
  std::cout << "[online] regular round: " << FormatDouble(round.plan_seconds / 3600.0, 2)
            << " h (baseline "
            << FormatDouble(
                   BaselinePolicy(&suite, BaselineConfig()).RoundDurationSeconds() / 3600.0,
                   2)
            << " h)\n";
  return 0;
}

// Fleet-wide budgeted scrub (docs/scrubbing.md): discovery screen, then the prioritized
// in-production epoch loop; the scrub report JSON lands on stdout. The report is a pure
// function of the flags -- byte-identical at any --threads and across discovery modes --
// which tools/check_scrub_json.py relies on. --hours is the production horizon in
// simulated hours (730.56 h per 30.44-day month); --fleet and the global --processors /
// --seed compose, with the global overrides winning as everywhere else.
int CmdScrub(int argc, char** argv, const GlobalOptions& options) {
  ScrubConfig config;
  config.population.processor_count = 100000;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--budget") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "sdcctl: --budget requires an operand (fraction of fleet cycles)\n";
        return 2;
      }
      const auto parsed = ParseDouble(argv[++i]);
      if (!parsed.has_value() || *parsed < 0.0) {
        return InvalidOperand("--budget operand", argv[i]);
      }
      config.budget_fraction = *parsed;
      continue;
    }
    if (std::strcmp(argv[i], "--hours") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "sdcctl: --hours requires an operand (simulated horizon hours)\n";
        return 2;
      }
      const auto parsed = ParseDouble(argv[++i]);
      if (!parsed.has_value() || *parsed <= 0.0) {
        return InvalidOperand("--hours operand", argv[i]);
      }
      config.horizon_months = *parsed / (30.44 * 24.0);
      continue;
    }
    if (std::strcmp(argv[i], "--fleet") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "sdcctl: --fleet requires an operand (processor count)\n";
        return 2;
      }
      const auto parsed = ParseUint64(argv[++i]);
      if (!parsed.has_value() || *parsed < 1) {
        return InvalidOperand("--fleet operand", argv[i]);
      }
      config.population.processor_count = *parsed;
      continue;
    }
    return InvalidOperand("scrub operand", argv[i]);
  }
  if (options.processors_set) {
    config.population.processor_count = options.processors;
  }
  if (options.seed_set) {
    config.population.seed = options.seed;
  }
  config.threads = options.threads;
  config.metrics = options.metrics;
  config.trace = options.trace;
  config.series = options.series;
  const TestSuite suite = TestSuite::BuildFull();
  WriteScrubReportJson(std::cout, FleetScrubber(&suite).Run(config));
  std::cout << "\n";
  return 0;
}

int CmdExport(const std::string& what, const GlobalOptions& options) {
  if (what == "catalog") {
    WriteCatalogJson(std::cout, StudyCatalog());
    return 0;
  }
  if (what == "screening") {
    PopulationConfig population_config;
    population_config.processor_count = 250000;
    ApplyFleetOverrides(population_config, options);
    const TestSuite suite = TestSuite::BuildFull();
    ScreeningPipeline pipeline(&suite);
    ScreeningConfig screening_config;
    screening_config.threads = options.threads;
    screening_config.metrics = options.metrics;
    screening_config.trace = options.trace;
    WriteScreeningStatsJson(
        std::cout,
        GenerateAndScreen(population_config, pipeline, screening_config, options.stream));
    return 0;
  }
  if (what.rfind("sweep:", 0) == 0) {
    const std::string cpu_id = what.substr(6);
    if (!TryFindInCatalog(cpu_id).has_value()) {
      std::cerr << "unknown cpu id: " << cpu_id << "\n";
      return 1;
    }
    const TestSuite suite = TestSuite::BuildFull();
    TestFramework framework(&suite);
    FaultyMachine machine(FindInCatalog(cpu_id), 1);
    TestRunConfig config;
    config.time_scale = 2e7;
    config.simultaneous_cores = true;
    config.burn_in_seconds = 300.0;
    config.seed = 3;
    config.parallel_plan_entries = options.threads_set;
    config.threads = options.threads;
    config.metrics = options.metrics;
    config.trace = options.trace;
    WriteRunReportJson(std::cout,
                       framework.RunPlan(machine, framework.EqualPlan(30.0), config));
    return 0;
  }
  std::cerr << "export targets: catalog | screening | sweep:<cpu_id>\n";
  return 2;
}

// One row of the `top` table, parsed from a protocol status line (the key=value form
// FormatCampaignStatus renders). Unknown keys are skipped, so the client tolerates
// daemons that add fields.
struct TopRow {
  uint64_t id = 0;
  std::string name;
  std::string state;
  int lanes = 0;
  uint64_t shards_done = 0;
  uint64_t shards_total = 0;
  uint64_t detections = 0;
  double progress = 0.0;
};

bool ParseTopRow(const std::string& line, TopRow& row) {
  std::istringstream tokens(line);
  std::string token;
  bool saw_id = false;
  while (tokens >> token) {
    const size_t eq = token.find('=');
    if (eq == std::string::npos) {
      continue;
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "id") {
      const auto parsed = ParseUint64(value.c_str());
      if (!parsed.has_value()) {
        return false;
      }
      row.id = *parsed;
      saw_id = true;
    } else if (key == "name") {
      row.name = value;
    } else if (key == "state") {
      row.state = value;
    } else if (key == "lanes") {
      const auto parsed = ParseInt(value.c_str());
      row.lanes = parsed.has_value() ? *parsed : 0;
    } else if (key == "shards") {
      const size_t slash = value.find('/');
      if (slash == std::string::npos) {
        return false;
      }
      const auto done = ParseUint64(value.substr(0, slash).c_str());
      const auto total = ParseUint64(value.substr(slash + 1).c_str());
      if (!done.has_value() || !total.has_value()) {
        return false;
      }
      row.shards_done = *done;
      row.shards_total = *total;
    } else if (key == "detections") {
      const auto parsed = ParseUint64(value.c_str());
      row.detections = parsed.has_value() ? *parsed : 0;
    } else if (key == "progress") {
      const auto parsed = ParseDouble(value.c_str());
      row.progress = parsed.has_value() ? *parsed : 0.0;
    }
  }
  return saw_id;
}

// `sdcctl --socket PATH top`: live campaign table over a running sdcd. Each poll fetches
// the daemon-wide status line plus `list` and renders one screen: state, progress,
// detections, client-side shards/s (ledger delta across successive polls), and the ETA
// that rate implies. --iterations 0 polls until interrupted or the daemon goes away;
// tests pass a finite count. ANSI clear codes are emitted only on a tty, so redirected
// output is a plain append-only log of refreshes.
int CmdTop(int argc, char** argv, const std::string& socket_path) {
  uint64_t iterations = 0;
  uint64_t interval_ms = 1000;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--iterations") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "sdcctl: --iterations requires an operand\n";
        return 2;
      }
      const auto parsed = ParseUint64(argv[++i]);
      if (!parsed.has_value()) {
        return InvalidOperand("--iterations operand", argv[i]);
      }
      iterations = *parsed;
      continue;
    }
    if (std::strcmp(argv[i], "--interval-ms") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "sdcctl: --interval-ms requires an operand\n";
        return 2;
      }
      const auto parsed = ParseUint64(argv[++i]);
      if (!parsed.has_value() || *parsed == 0) {
        return InvalidOperand("--interval-ms operand", argv[i]);
      }
      interval_ms = *parsed;
      continue;
    }
    return InvalidOperand("top operand", argv[i]);
  }

  DaemonClient client(socket_path);
  std::string error;
  if (!client.Connect(error)) {
    std::cerr << "sdcctl: " << error << "\n";
    return 1;
  }
  const bool tty = ::isatty(STDOUT_FILENO) != 0;
  std::map<uint64_t, uint64_t> last_done;  // campaign id -> shards_done last poll
  for (uint64_t poll = 0; iterations == 0 || poll < iterations; ++poll) {
    if (poll > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
    std::string health_line;
    std::string health_payload;
    if (!client.Request("status", health_line, health_payload, error)) {
      std::cerr << "sdcctl: " << error << "\n";
      return 1;
    }
    std::string list_line;
    std::string list_payload;
    if (!client.Request("list", list_line, list_payload, error)) {
      std::cerr << "sdcctl: " << error << "\n";
      return 1;
    }
    if (health_line.rfind("err ", 0) == 0 || list_line.rfind("err ", 0) == 0) {
      const std::string& err_line =
          health_line.rfind("err ", 0) == 0 ? health_line : list_line;
      std::cerr << "sdcctl: daemon: " << err_line.substr(4) << "\n";
      return 1;
    }
    if (tty) {
      std::cout << "\x1b[H\x1b[2J";  // cursor home + clear: one refreshing screen
    }
    std::cout << "sdcd " << socket_path << " -- "
              << (health_line.rfind("ok ", 0) == 0 ? health_line.substr(3) : health_line)
              << "\n";
    TextTable table(
        {"id", "name", "state", "lanes", "shards", "prog", "det", "shards/s", "eta(s)"});
    std::istringstream lines(list_payload);
    std::string status_line;
    while (std::getline(lines, status_line)) {
      TopRow row;
      if (!ParseTopRow(status_line, row)) {
        continue;
      }
      // Client-side rate from the ledger delta across polls; a campaign's first
      // appearance (and non-running states) show "-".
      std::string rate_text = "-";
      std::string eta_text = "-";
      const auto previous = last_done.find(row.id);
      if (previous != last_done.end() && row.state == "running") {
        const double rate = static_cast<double>(row.shards_done - previous->second) *
                            1000.0 / static_cast<double>(interval_ms);
        rate_text = FormatDouble(rate, 1);
        if (rate > 0.0) {
          eta_text = FormatDouble(
              static_cast<double>(row.shards_total - row.shards_done) / rate, 1);
        }
      }
      last_done[row.id] = row.shards_done;
      table.AddRow({std::to_string(row.id), row.name, row.state,
                    std::to_string(row.lanes),
                    std::to_string(row.shards_done) + "/" +
                        std::to_string(row.shards_total),
                    FormatDouble(row.progress * 100.0, 1) + "%",
                    std::to_string(row.detections), rate_text, eta_text});
    }
    table.Print(std::cout);
    std::cout.flush();
  }
  return 0;
}

// Client mode (--socket): forwards one protocol verb verbatim to a running sdcd
// (docs/daemon.md) and maps the reply onto the CLI's exit-status discipline -- usage
// errors the daemon flags as `err proto` / `err spec` exit 2 like any other malformed
// operand; runtime conditions (unknown id, campaign not done, daemon shutting down, no
// daemon at the socket) exit 1. Payload-bearing replies (result / metrics / trace / list)
// put exactly the payload on stdout so client output can be diffed against one-shot runs.
int RunClient(int argc, char** argv, const std::string& socket_path) {
  std::string request = argv[1];
  for (int i = 2; i < argc; ++i) {
    request += ' ';
    request += argv[i];
  }
  DaemonClient client(socket_path);
  std::string error;
  if (!client.Connect(error)) {
    std::cerr << "sdcctl: " << error << "\n";
    return 1;
  }
  std::string reply_line;
  std::string payload;
  if (!client.Request(request, reply_line, payload, error)) {
    std::cerr << "sdcctl: " << error << "\n";
    return 1;
  }
  if (reply_line.rfind("err ", 0) == 0) {
    std::cerr << "sdcctl: daemon: " << reply_line.substr(4) << "\n";
    const size_t code_end = reply_line.find(' ', 4);
    const std::string code = reply_line.substr(4, code_end == std::string::npos
                                                      ? std::string::npos
                                                      : code_end - 4);
    return code == "proto" || code == "spec" ? 2 : 1;
  }
  if (!payload.empty()) {
    std::cout << payload;
    if (payload.back() != '\n') {
      std::cout << "\n";
    }
  } else {
    std::cout << reply_line << "\n";
  }
  return 0;
}

int Usage() {
  std::cerr << "usage: sdcctl [--threads N] [--metrics-out FILE] [--trace-out FILE] "
               "[--stream] [--processors N] [--seed S]\n"
               "              <catalog|suite|sweep|screen|scrub|frequency|protect|export"
               "|metrics|trace> [args]\n"
               "  catalog\n"
               "  suite [substring]\n"
               "  sweep <cpu_id> [seconds_per_case=30]\n"
               "  screen <processor_count>\n"
               "  scrub [--budget F] [--hours H] [--fleet N]\n"
               "                     fleet-wide budgeted scrub (docs/scrubbing.md): screen\n"
               "                     the fleet, then run the prioritized in-production\n"
               "                     scrubber; report JSON to stdout. --budget = fraction\n"
               "                     of fleet cycles spent testing (default 1e-5),\n"
               "                     --hours = simulated horizon (default 8766 ~ 12\n"
               "                     months), --fleet = processor count (default 100000;\n"
               "                     --processors/--seed/--threads compose)\n"
               "  frequency <cpu_id> <testcase_id> <pcore> <tempC> [duration_s=3600]\n"
               "  protect <cpu_id> [hours=4]\n"
               "  export <catalog|screening|sweep:CPU>   (JSON to stdout)\n"
               "  metrics [processor_count=100000]       (metrics JSON to stdout)\n"
               "  trace [processor_count=100000]         (trace summary to stdout)\n"
               "  --threads N        workers for generation/screening/sweeps; 0 = hardware\n"
               "                     concurrency; results are identical at any thread count\n"
               "  --metrics-out FILE write the run's metrics snapshot JSON to FILE\n"
               "                     (`-` = stdout; tables then move to stderr)\n"
               "  --trace-out FILE   write the run's Chrome/Perfetto trace-event JSON to\n"
               "                     FILE (`-` = stdout, same discipline); load it in\n"
               "                     ui.perfetto.dev or chrome://tracing\n"
               "  --prom-out FILE    write the run's metrics as Prometheus text exposition\n"
               "                     to FILE (`-` = stdout, same discipline); composes\n"
               "                     with --metrics-out (one run, both renderings)\n"
               "  --series-out FILE  write the run's time-series snapshot JSON to FILE\n"
               "                     (`-` = stdout, same discipline); sim series are\n"
               "                     byte-identical at any --threads and across --stream\n"
               "  --stream           run the fleet commands (screen, metrics, export\n"
               "                     screening) as one fused generate->screen pass with\n"
               "                     O(threads x shard) peak memory instead of\n"
               "                     materializing the fleet; output is byte-identical\n"
               "  --processors N     fleet-size override for the fleet commands (wins over\n"
               "                     positional counts and built-in defaults)\n"
               "  --seed S           fleet generation seed override for the same commands\n"
               "  --sweep SPEC       batch K screening scenarios against one fleet in one\n"
               "                     pass (screen only; composes with --stream). SPEC is\n"
               "                     seeds:K or a scenario file: one scenario per line of\n"
               "                     key=value pairs (name, seed, period_months,\n"
               "                     horizon_months, regular_groups,\n"
               "                     stage.<factory|datacenter|reinstall|regular>\n"
               "                     .<seconds|temp|catch>). Each row is byte-identical\n"
               "                     to a separate single-scenario run\n"
               "  --socket PATH      talk to a running sdcd at PATH instead of running\n"
               "                     locally. Commands become protocol verbs\n"
               "                     (docs/daemon.md):\n"
               "                       submit <key=value ...>   enqueue a campaign\n"
               "                       status [id] | stats <id> | list | wait <id>\n"
               "                       cancel <id> | result <id> [k] | metrics <id>\n"
               "                       trace <id> | prom | ping | shutdown\n"
               "                       top [--iterations N] [--interval-ms M]\n"
               "                         refreshing per-campaign table (state, progress,\n"
               "                         detections, shards/s, ETA); N=0 polls forever\n";
  return 2;
}

int Dispatch(int argc, char** argv, const GlobalOptions& options) {
  const std::string command = argv[1];
  if (command == "catalog") {
    return CmdCatalog();
  }
  if (command == "suite") {
    return CmdSuite(argc > 2 ? argv[2] : "");
  }
  if (command == "sweep" && argc >= 3) {
    double seconds_per_case = 30.0;
    if (argc > 3) {
      const auto parsed = ParseDouble(argv[3]);
      if (!parsed.has_value() || *parsed <= 0.0) {
        return InvalidOperand("seconds_per_case", argv[3]);
      }
      seconds_per_case = *parsed;
    }
    return CmdSweep(argv[2], seconds_per_case, options);
  }
  if (command == "screen" && argc >= 3) {
    const auto count = ParseUint64(argv[2]);
    if (!count.has_value()) {
      return InvalidOperand("processor_count", argv[2]);
    }
    if (!options.sweep_spec.empty()) {
      std::vector<SweepScenario> scenarios;
      std::string error;
      if (!ParseSweepSpec(options.sweep_spec, scenarios, error)) {
        std::cerr << "sdcctl: invalid --sweep spec: " << error << "\n";
        return 2;
      }
      return CmdScreenSweep(*count, std::move(scenarios), options);
    }
    return CmdScreen(*count, options);
  }
  if (command == "metrics") {
    uint64_t count = 100000;
    if (argc > 2) {
      const auto parsed = ParseUint64(argv[2]);
      if (!parsed.has_value()) {
        return InvalidOperand("processor_count", argv[2]);
      }
      count = *parsed;
    }
    return CmdMetrics(count, options);
  }
  if (command == "trace") {
    uint64_t count = 100000;
    if (argc > 2) {
      const auto parsed = ParseUint64(argv[2]);
      if (!parsed.has_value()) {
        return InvalidOperand("processor_count", argv[2]);
      }
      count = *parsed;
    }
    return CmdTrace(count, options);
  }
  if (command == "frequency" && argc >= 6) {
    const auto pcore = ParseInt(argv[4]);
    if (!pcore.has_value() || *pcore < 0) {
      return InvalidOperand("pcore", argv[4]);
    }
    const auto temperature = ParseDouble(argv[5]);
    if (!temperature.has_value()) {
      return InvalidOperand("temperature", argv[5]);
    }
    double duration = 3600.0;
    if (argc > 6) {
      const auto parsed = ParseDouble(argv[6]);
      if (!parsed.has_value() || *parsed <= 0.0) {
        return InvalidOperand("duration", argv[6]);
      }
      duration = *parsed;
    }
    return CmdFrequency(argv[2], argv[3], *pcore, *temperature, duration);
  }
  if (command == "scrub") {
    return CmdScrub(argc, argv, options);
  }
  if (command == "export" && argc >= 3) {
    return CmdExport(argv[2], options);
  }
  if (command == "protect" && argc >= 3) {
    double hours = 4.0;
    if (argc > 3) {
      const auto parsed = ParseDouble(argv[3]);
      if (!parsed.has_value() || *parsed <= 0.0) {
        return InvalidOperand("hours", argv[3]);
      }
      hours = *parsed;
    }
    return CmdProtect(argv[2], hours, options);
  }
  return Usage();
}

int Main(int argc, char** argv) {
  // Strip the global flags (accepted anywhere) before positional dispatch. A flag whose
  // operand is missing or unparseable is a usage error, never a silent default.
  GlobalOptions options;
  std::vector<char*> args;
  args.reserve(static_cast<size_t>(argc));
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threads") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "sdcctl: --threads requires an operand\n";
        return 2;
      }
      const auto threads = ParseInt(argv[++i]);
      if (!threads.has_value() || *threads < 0) {
        return InvalidOperand("--threads operand", argv[i]);
      }
      options.threads = *threads;
      options.threads_set = true;
      continue;
    }
    if (std::strcmp(argv[i], "--metrics-out") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "sdcctl: --metrics-out requires an operand\n";
        return 2;
      }
      options.metrics_out = argv[++i];
      continue;
    }
    if (std::strcmp(argv[i], "--trace-out") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "sdcctl: --trace-out requires an operand\n";
        return 2;
      }
      options.trace_out = argv[++i];
      continue;
    }
    if (std::strcmp(argv[i], "--prom-out") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "sdcctl: --prom-out requires an operand\n";
        return 2;
      }
      options.prom_out = argv[++i];
      continue;
    }
    if (std::strcmp(argv[i], "--series-out") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "sdcctl: --series-out requires an operand\n";
        return 2;
      }
      options.series_out = argv[++i];
      continue;
    }
    if (std::strcmp(argv[i], "--stream") == 0) {
      options.stream = true;
      continue;
    }
    if (std::strcmp(argv[i], "--processors") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "sdcctl: --processors requires an operand\n";
        return 2;
      }
      const auto processors = ParseUint64(argv[++i]);
      if (!processors.has_value()) {
        return InvalidOperand("--processors operand", argv[i]);
      }
      options.processors = *processors;
      options.processors_set = true;
      continue;
    }
    if (std::strcmp(argv[i], "--seed") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "sdcctl: --seed requires an operand\n";
        return 2;
      }
      const auto seed = ParseUint64(argv[++i]);
      if (!seed.has_value()) {
        return InvalidOperand("--seed operand", argv[i]);
      }
      options.seed = *seed;
      options.seed_set = true;
      continue;
    }
    if (std::strcmp(argv[i], "--sweep") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "sdcctl: --sweep requires an operand (seeds:K or a scenario file)\n";
        return 2;
      }
      options.sweep_spec = argv[++i];
      if (options.sweep_spec.empty()) {
        std::cerr << "sdcctl: --sweep operand must not be empty\n";
        return 2;
      }
      continue;
    }
    if (std::strcmp(argv[i], "--socket") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "sdcctl: --socket requires an operand (the sdcd socket path)\n";
        return 2;
      }
      options.socket_path = argv[++i];
      if (options.socket_path.empty()) {
        std::cerr << "sdcctl: --socket operand must not be empty\n";
        return 2;
      }
      continue;
    }
    args.push_back(argv[i]);
  }
  argc = static_cast<int>(args.size());
  argv = args.data();
  if (argc < 2) {
    return Usage();
  }
  // Client mode bypasses local dispatch entirely: the daemon owns execution; this process
  // only frames the request and maps the reply to an exit status. `top` is the one
  // client-side command: it polls status+list itself rather than forwarding a verb.
  if (!options.socket_path.empty()) {
    if (std::strcmp(argv[1], "top") == 0) {
      return CmdTop(argc, argv, options.socket_path);
    }
    return RunClient(argc, argv, options.socket_path);
  }
  if (std::strcmp(argv[1], "top") == 0) {
    std::cerr << "sdcctl: top requires --socket (a running sdcd to watch)\n";
    return 2;
  }
  // --sweep only batches the `screen` command; rejecting it elsewhere beats silently
  // running a single-scenario pass the user thought was a sweep.
  if (!options.sweep_spec.empty() && std::strcmp(argv[1], "screen") != 0) {
    std::cerr << "sdcctl: --sweep applies only to the screen command\n";
    return 2;
  }
  // `metrics` with no explicit target defaults to stdout.
  if (std::strcmp(argv[1], "metrics") == 0 && options.metrics_out.empty()) {
    options.metrics_out = "-";
  }

  MetricsRegistry registry;
  if (!options.metrics_out.empty() || !options.prom_out.empty()) {
    options.metrics = &registry;
  }
  // The `trace` summary command needs a recorder even without an export target.
  TraceRecorder trace_recorder;
  if (!options.trace_out.empty() || std::strcmp(argv[1], "trace") == 0) {
    options.trace = &trace_recorder;
  }
  SeriesRecorder series_recorder;
  if (!options.series_out.empty()) {
    options.series = &series_recorder;
  }
  // With a snapshot bound for stdout, human-readable output moves to stderr so stdout
  // carries exactly the JSON document(s).
  std::streambuf* saved_cout = nullptr;
  if (options.metrics_out == "-" || options.trace_out == "-" ||
      options.prom_out == "-" || options.series_out == "-") {
    saved_cout = std::cout.rdbuf(std::cerr.rdbuf());
  }
  const int status = Dispatch(argc, argv, options);
  if (saved_cout != nullptr) {
    std::cout.rdbuf(saved_cout);
  }
  if (!options.metrics_out.empty() && status == 0) {
    if (options.metrics_out == "-") {
      WriteMetricsJson(std::cout, registry.Snapshot());
      std::cout << "\n";
    } else {
      std::ofstream out(options.metrics_out);
      if (!out) {
        std::cerr << "sdcctl: cannot open metrics output file: " << options.metrics_out
                  << "\n";
        return 1;
      }
      WriteMetricsJson(out, registry.Snapshot());
      out << "\n";
    }
  }
  if (!options.trace_out.empty() && status == 0) {
    if (options.trace_out == "-") {
      WriteTraceJson(std::cout, trace_recorder.Snapshot());
      std::cout << "\n";
    } else {
      std::ofstream out(options.trace_out);
      if (!out) {
        std::cerr << "sdcctl: cannot open trace output file: " << options.trace_out
                  << "\n";
        return 1;
      }
      WriteTraceJson(out, trace_recorder.Snapshot());
      out << "\n";
    }
  }
  if (!options.prom_out.empty() && status == 0) {
    if (options.prom_out == "-") {
      WriteMetricsProm(std::cout, registry.Snapshot());
    } else {
      std::ofstream out(options.prom_out);
      if (!out) {
        std::cerr << "sdcctl: cannot open prom output file: " << options.prom_out << "\n";
        return 1;
      }
      WriteMetricsProm(out, registry.Snapshot());
    }
  }
  if (!options.series_out.empty() && status == 0) {
    if (options.series_out == "-") {
      WriteSeriesJson(std::cout, series_recorder.Snapshot());
      std::cout << "\n";
    } else {
      std::ofstream out(options.series_out);
      if (!out) {
        std::cerr << "sdcctl: cannot open series output file: " << options.series_out
                  << "\n";
        return 1;
      }
      WriteSeriesJson(out, series_recorder.Snapshot());
      out << "\n";
    }
  }
  return status;
}

}  // namespace
}  // namespace sdc

int main(int argc, char** argv) { return sdc::Main(argc, argv); }
