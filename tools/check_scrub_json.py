#!/usr/bin/env python3
"""Acceptance check for `sdcctl scrub` (docs/scrubbing.md).

Four properties, end to end through the CLI:

1. Schema: the report is one JSON document with the documented fleet / budget /
   outcomes / timeline / detections / capacity sections, internally consistent
   (timeline sums match the ledger totals, coverage matches detections/sessions,
   every detection carries scheduler provenance).
2. Budget discipline: total spend never exceeds the configured budget, and at the
   default budget -- which is below the fleet's one-round-per-part demand, so the
   run is budget-limited -- utilization is within 1% of full.
3. Determinism: the report bytes are identical at 1, 2, and 8 worker threads.
4. Scaling: doubling --budget doubles the dispensed budget exactly and the run
   stays budget-disciplined.

Usage: check_scrub_json.py <sdcctl-binary> [fleet] [hours]
Defaults: 50,000 processors over a 4,383-hour (~6-month) horizon. CI's release job
runs the same script at 1M processors.
"""

import json
import math
import subprocess
import sys


def run_scrub(binary, args):
    result = subprocess.run([binary] + args, capture_output=True, text=True)
    assert result.returncode == 0, (
        f"sdcctl {' '.join(args)} failed ({result.returncode}):\n{result.stderr}")
    return result.stdout


def check_schema(report, fleet, hours):
    for section in ("fleet", "budget", "outcomes", "timeline", "detections", "capacity"):
        assert section in report, f"missing section '{section}'"
    f, b, o = report["fleet"], report["budget"], report["outcomes"]
    assert f["processors"] == fleet, f
    assert f["faulty"] == f["pre_production_detections"] + f["sessions"], f
    assert f["undetectable_sessions"] <= f["sessions"], f

    # The ledger: per-epoch rows must sum to the totals, and the horizon must cover
    # the requested hours (730.56 h per 30.44-day month).
    months = hours / 730.56
    assert abs(b["horizon_months"] - months) < 1e-9 * max(1.0, months), b
    assert len(report["timeline"]) == math.ceil(b["horizon_months"] / b["epoch_months"] -
                                                1e-9), report["timeline"]
    for key, total in (("session_seconds", b["session_seconds"]),
                       ("sweep_seconds", b["sweep_seconds"]),
                       ("budget_seconds", b["total_budget_seconds"])):
        summed = sum(point[key] for point in report["timeline"])
        assert abs(summed - total) <= 1e-6 * max(1.0, abs(total)), (
            f"timeline {key} sums to {summed}, ledger says {total}")
    assert abs(b["spent_seconds"] - (b["session_seconds"] + b["sweep_seconds"])) <= 1e-6, b

    # Outcomes: coverage is detections over tracked sessions; every detection is
    # attributable to the grant that funded it.
    assert o["detections"] == len(report["detections"]), o
    if f["sessions"] > 0:
        assert abs(o["coverage"] - o["detections"] / f["sessions"]) < 1e-12, o
    for detection in report["detections"]:
        assert detection["month"] <= b["horizon_months"] + 1e-9, detection
        provenance = detection["provenance"]
        assert provenance["granted_seconds"] > 0.0, detection
        assert provenance["epoch"] < len(report["timeline"]), detection


def check_budget_discipline(report):
    b = report["budget"]
    assert b["spent_seconds"] <= b["total_budget_seconds"] * (1 + 1e-9), (
        f"overspent: {b['spent_seconds']} of {b['total_budget_seconds']}")
    assert b["utilization"] >= 0.99, (
        f"budget-limited run left {1 - b['utilization']:.2%} unspent")


def main() -> int:
    if len(sys.argv) < 2:
        print(f"usage: {sys.argv[0]} <sdcctl-binary> [fleet] [hours]", file=sys.stderr)
        return 2
    binary = sys.argv[1]
    fleet = int(sys.argv[2]) if len(sys.argv) > 2 else 50_000
    hours = int(sys.argv[3]) if len(sys.argv) > 3 else 4383

    base = ["scrub", "--fleet", str(fleet), "--hours", str(hours)]

    # 1 + 2. Schema and budget discipline at one thread.
    golden = run_scrub(binary, base + ["--threads", "1"])
    report = json.loads(golden)
    check_schema(report, fleet, hours)
    check_budget_discipline(report)

    # 3. Byte-identical report at every thread count.
    for threads in (2, 8):
        other = run_scrub(binary, base + ["--threads", str(threads)])
        assert other == golden, f"report diverged at {threads} threads"

    # 4. Doubling the budget doubles the dispensed seconds exactly and stays
    # disciplined (the default budget fraction is 1e-5).
    doubled = json.loads(run_scrub(binary, base + ["--budget", "2e-5"]))
    check_budget_discipline(doubled)
    ratio = (doubled["budget"]["total_budget_seconds"] /
             report["budget"]["total_budget_seconds"])
    assert abs(ratio - 2.0) < 1e-9, f"budget did not scale linearly: {ratio}"

    # Flag discipline: missing or malformed scrub operands are usage errors (2).
    for bad in (["scrub", "--budget"], ["scrub", "--hours", "-3"], ["scrub", "--bogus"]):
        rc = subprocess.run([binary] + bad, capture_output=True).returncode
        assert rc == 2, f"sdcctl {' '.join(bad)} exited {rc}, want 2"

    b = report["budget"]
    print(f"ok: scrub report at {fleet} processors / {hours} h is byte-identical at "
          f"1/2/8 threads; spent {b['utilization']:.4%} of budget "
          f"({report['outcomes']['detections']} detections, "
          f"{report['fleet']['sessions']} sessions)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
