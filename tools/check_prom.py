#!/usr/bin/env python3
"""Acceptance check for the Prometheus exposition surfaces (docs/observability.md).

Two passes:

1. Exposition lint, applied both to `sdcctl --prom-out -` (one-shot run) and to the
   daemon's `prom` verb: every line is either `# TYPE <name> <kind>` or a sample;
   metric and label names match the exposition charset; every sample belongs to a
   previously TYPE-declared family (histogram samples via the _bucket/_count suffixes,
   summary samples via _sum/_count); no family is TYPE-declared twice; every value
   parses; counters carry the _total suffix; histogram le-buckets are cumulative and
   end with the +Inf bucket equal to _count.

2. Counter monotonicity over a live daemon: poll `prom` twice around a campaign's
   lifetime and require every counter-typed sample -- and the per-campaign
   sdc_campaign_shards_done/sdc_campaign_detections gauges, monotonic per label set by
   design -- to never decrease between polls, with sdc_daemon_events_recorded_total and
   sdc_daemon_campaigns_total strictly increasing across the second submit.

Usage: check_prom.py <sdcd-binary> <sdcctl-binary> [processors]
Default fleet size is 100,000.
"""

import os
import re
import subprocess
import sys
import tempfile
import time

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
TYPE_LINE = re.compile(r"^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary)$")
SAMPLE_LINE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"          # metric name
    r"(\{(?:[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\",?)*\})?"  # optional label set
    r" (-?(?:\d+(?:\.\d*)?(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?))$")
KNOWN_MONOTONIC_GAUGES = ("sdc_campaign_shards_done", "sdc_campaign_detections",
                          "sdc_campaign_shards_total")


def base_family(name, families):
    """Maps a sample name back to its TYPE-declared family."""
    if name in families:
        return name
    for suffix in ("_bucket", "_count", "_sum"):
        if name.endswith(suffix) and name[: -len(suffix)] in families:
            return name[: -len(suffix)]
    return None


def lint(text, source):
    """Lints one exposition document; returns {(name, labels): value} samples."""
    families = {}
    samples = {}
    histogram_state = {}  # family -> (last cumulative bucket, saw +Inf)
    for raw in text.splitlines():
        line = raw.rstrip("\n")
        if not line:
            continue
        if line.startswith("#"):
            match = TYPE_LINE.match(line)
            assert match, f"{source}: malformed comment line: {line!r}"
            name, kind = match.groups()
            assert name not in families, f"{source}: duplicate TYPE for {name}"
            families[name] = kind
            continue
        match = SAMPLE_LINE.match(line)
        assert match, f"{source}: malformed sample line: {line!r}"
        name, labels, value_text = match.groups()
        labels = labels or ""
        value = float(value_text)
        family = base_family(name, families)
        assert family is not None, f"{source}: sample {name} has no TYPE declaration"
        kind = families[family]
        if kind == "counter":
            assert family.endswith("_total"), (
                f"{source}: counter {family} lacks the _total suffix")
            assert value >= 0.0, f"{source}: negative counter {line!r}"
        if kind == "histogram" and name.endswith("_bucket"):
            last, saw_inf = histogram_state.get(family, (None, False))
            assert not saw_inf, f"{source}: {family} bucket after +Inf"
            if last is not None:
                assert value >= last, (
                    f"{source}: {family} le-buckets not cumulative: {value} < {last}")
            is_inf = 'le="+Inf"' in labels
            histogram_state[family] = (value, is_inf)
        if kind == "histogram" and name.endswith("_count"):
            last, saw_inf = histogram_state.get(family, (None, False))
            assert saw_inf, f"{source}: {family}_count before the +Inf bucket"
            assert value == last, (
                f"{source}: {family}_count {value} != +Inf bucket {last}")
            histogram_state.pop(family)
        key = (name, labels)
        assert key not in samples, f"{source}: duplicate sample {key}"
        samples[key] = (families[family], value)
    assert families, f"{source}: empty exposition"
    assert not histogram_state, (
        f"{source}: histograms missing _count: {sorted(histogram_state)}")
    return samples


def assert_monotonic(before, after, source):
    regressions = []
    for key, (kind, value) in before.items():
        if key not in after:
            continue  # a family can disappear only if the daemon restarted -- it didn't
        later = after[key][1]
        name = key[0]
        if kind == "counter" or name.startswith(KNOWN_MONOTONIC_GAUGES):
            if later < value:
                regressions.append((key, value, later))
    assert not regressions, f"{source}: counters went backwards: {regressions}"


def client(ctl, socket, *args):
    result = subprocess.run([ctl, "--socket", socket, *args],
                            capture_output=True, text=True)
    assert result.returncode == 0, (
        f"sdcctl {' '.join(args)}: exit {result.returncode}\nstderr: {result.stderr}")
    return result.stdout


def main() -> int:
    if len(sys.argv) < 3:
        print(f"usage: {sys.argv[0]} <sdcd-binary> <sdcctl-binary> [processors]",
              file=sys.stderr)
        return 2
    sdcd, ctl = sys.argv[1], sys.argv[2]
    processors = int(sys.argv[3]) if len(sys.argv) > 3 else 100_000

    # Pass 1a: the one-shot CLI exposition.
    one_shot = subprocess.run(
        [ctl, "--stream", "--processors", str(processors), "--prom-out", "-",
         "screen", str(processors)],
        capture_output=True, text=True, check=True)
    cli_samples = lint(one_shot.stdout, "sdcctl --prom-out")
    assert ("sdc_screening_tested_total", "") in cli_samples, sorted(cli_samples)[:5]
    tested = cli_samples[("sdc_screening_tested_total", "")][1]
    assert tested == processors, f"tested {tested} != fleet {processors}"

    # Pass 1b + 2: the live daemon, polled twice around a campaign boundary.
    workdir = tempfile.mkdtemp(prefix="sdcd-prom-")
    socket = os.path.join(workdir, "sdcd.sock")
    daemon = subprocess.Popen([sdcd, "--socket", socket, "--lanes", "2"],
                              stderr=subprocess.PIPE, text=True)
    try:
        deadline = time.time() + 10
        while True:
            if os.path.exists(socket) and subprocess.run(
                    [ctl, "--socket", socket, "ping"],
                    capture_output=True).returncode == 0:
                break
            assert time.time() < deadline, "sdcd did not come up within 10 s"
            assert daemon.poll() is None, f"sdcd died at startup: {daemon.stderr.read()}"
            time.sleep(0.05)

        first_id = client(ctl, socket, "submit", "name=p1",
                          f"processors={processors}").strip()[len("ok id="):]
        client(ctl, socket, "wait", first_id)
        poll_1 = lint(client(ctl, socket, "prom"), "prom poll 1")
        assert ("sdc_daemon_campaigns_total", "") in poll_1, sorted(poll_1)[:5]
        assert ("sdc_campaign_progress", '{id="1",name="p1"}') in poll_1, (
            sorted(k for k in poll_1 if k[0].startswith("sdc_campaign"))[:8])
        second_id = client(ctl, socket, "submit", "name=p2",
                           f"processors={processors}").strip()[len("ok id="):]
        client(ctl, socket, "wait", second_id)
        poll_2 = lint(client(ctl, socket, "prom"), "prom poll 2")
        assert_monotonic(poll_1, poll_2, "prom polls")
        for strictly in ("sdc_daemon_campaigns_total", "sdc_daemon_events_recorded_total"):
            assert poll_2[(strictly, "")][1] > poll_1[(strictly, "")][1], (
                f"{strictly} did not advance across the second campaign")
        # The aggregated engine counters doubled: two identical campaigns merged.
        assert poll_2[("sdc_screening_tested_total", "")][1] == 2 * processors, poll_2[
            ("sdc_screening_tested_total", "")]
        client(ctl, socket, "shutdown")
        assert daemon.wait(timeout=10) == 0, "sdcd exited non-zero after shutdown"
        print(f"ok: exposition lint on {len(cli_samples)} CLI samples and "
              f"{len(poll_2)} daemon samples; counters monotonic across polls at "
              f"{processors} processors")
        return 0
    finally:
        if daemon.poll() is None:
            daemon.kill()
            daemon.wait()


if __name__ == "__main__":
    sys.exit(main())
