// sdcd: persistent screening daemon (docs/daemon.md).
//
//   sdcd --socket PATH [--lanes N] [--event-capacity N]
//
// Serves concurrent screening campaigns over a Unix-domain stream socket at PATH, each
// campaign a fused generate->screen pass (docs/streaming.md) on a private EngineContext.
// --lanes N bounds the ThreadPool lanes shared by all concurrent campaigns (0 = hardware
// concurrency; SDC_THREADS overrides N -- resolved exactly once, here at startup: a
// setenv against a running daemon changes nothing). Campaigns are admitted strictly in
// submission order as lanes free up, and every campaign's stats, metrics, and sim trace
// are byte-identical to an independent one-shot `sdcctl --stream` run of the same spec --
// the property tools/check_daemon.py verifies end to end.
//
// Drive it with `sdcctl --socket PATH <verb> ...`; stop it with `sdcctl --socket PATH
// shutdown` (in-flight campaigns are cancelled at their next shard boundary).
//
// Operands are parsed strictly (src/common/parse.h): a missing or malformed flag operand
// is a usage error (exit 2), never a silent default.

#include <unistd.h>

#include <cstring>
#include <iostream>
#include <string>

#include "src/common/parallel.h"
#include "src/common/parse.h"
#include "src/daemon/campaign.h"
#include "src/daemon/server.h"

namespace sdc {
namespace {

int Usage() {
  std::cerr << "usage: sdcd --socket PATH [--lanes N] [--event-capacity N]\n"
               "  --socket PATH       Unix-domain socket to listen on (created at\n"
               "                      startup, removed on shutdown; a stale socket at\n"
               "                      PATH is replaced)\n"
               "  --lanes N           total ThreadPool lanes shared by concurrent\n"
               "                      campaigns; 0 = hardware concurrency. SDC_THREADS\n"
               "                      overrides N -- consulted once here, never after\n"
               "                      startup\n"
               "  --event-capacity N  retained campaign-lifecycle events (default 4096,\n"
               "                      must be >= 1); older events are evicted and\n"
               "                      surfaced as dropped=N in the daemon status line\n";
  return 2;
}

int Main(int argc, char** argv) {
  std::string socket_path;
  int lanes = 0;
  uint64_t event_capacity = 4096;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--socket") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "sdcd: --socket requires an operand\n";
        return 2;
      }
      socket_path = argv[++i];
      if (socket_path.empty()) {
        std::cerr << "sdcd: --socket operand must not be empty\n";
        return 2;
      }
      continue;
    }
    if (std::strcmp(argv[i], "--lanes") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "sdcd: --lanes requires an operand\n";
        return 2;
      }
      const auto parsed = ParseInt(argv[i + 1]);
      if (!parsed.has_value() || *parsed < 0) {
        std::cerr << "sdcd: invalid --lanes operand: '" << argv[i + 1] << "'\n";
        return 2;
      }
      lanes = *parsed;
      ++i;
      continue;
    }
    if (std::strcmp(argv[i], "--event-capacity") == 0) {
      if (i + 1 >= argc) {
        std::cerr << "sdcd: --event-capacity requires an operand\n";
        return 2;
      }
      const auto parsed = ParseUint64(argv[i + 1]);
      if (!parsed.has_value() || *parsed == 0) {
        std::cerr << "sdcd: invalid --event-capacity operand: '" << argv[i + 1] << "'\n";
        return 2;
      }
      event_capacity = *parsed;
      ++i;
      continue;
    }
    std::cerr << "sdcd: unknown argument: '" << argv[i] << "'\n";
    return Usage();
  }
  if (socket_path.empty()) {
    return Usage();
  }

  // The only environment read of the daemon's lifetime: campaigns run with
  // env_overrides = false on lanes partitioned from this budget.
  CampaignManager manager(ResolveThreadCount(lanes),
                          static_cast<size_t>(event_capacity));
  DaemonServer server(&manager, socket_path);
  std::string error;
  if (!server.Start(error)) {
    std::cerr << "sdcd: " << error << "\n";
    return 1;
  }
  std::cerr << "sdcd: serving " << manager.total_lanes() << " lanes on " << socket_path
            << "\n";
  server.Serve();
  manager.Shutdown();
  ::unlink(socket_path.c_str());
  return 0;
}

}  // namespace
}  // namespace sdc

int main(int argc, char** argv) { return sdc::Main(argc, argv); }
