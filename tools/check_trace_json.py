#!/usr/bin/env python3
"""Acceptance check for sdcctl's --trace-out export (docs/observability.md).

Four properties, end to end through the CLI:

1. Schema: `sdcctl screen N --trace-out -` puts exactly one Chrome/Perfetto trace-event
   JSON document on stdout -- a traceEvents array whose entries all carry ph/name/pid/tid,
   with complete spans ('X') carrying ts+dur and instants ('i') carrying scope 's', plus
   the metadata preamble naming both clock-domain processes and every track.
2. Sim-timeline shape: pid-1 (simulated clock) events have non-decreasing timestamps per
   track, and the generate.shard spans tile the serial axis [0, N) exactly once.
3. Mode equivalence: `--stream` emits a byte-for-byte identical sim timeline (host spans
   are wall-clock and excluded by design).
4. Provenance cross-check: the number of detection instants equals the
   screening.detected and screening.provenance.records counters a metrics run reports
   for the same fleet.

Usage: check_trace_json.py <sdcctl-binary> [processors]
"""

import json
import subprocess
import sys

DEFAULT_PROCESSORS = 50000
VALID_PHASES = {"M", "X", "i"}
SIM_PID = 1
HOST_PID = 2
GENERATE_TRACK = 1


def run_json(binary, args):
    result = subprocess.run(
        [binary] + args, capture_output=True, text=True, check=True)
    return json.loads(result.stdout)  # must be a single valid document


def check_schema(doc):
    assert doc["displayTimeUnit"] == "ms", doc.get("displayTimeUnit")
    assert doc["hostEventsIncluded"] is True, doc.get("hostEventsIncluded")
    events = doc["traceEvents"]
    assert isinstance(events, list) and events, "traceEvents missing or empty"
    for event in events:
        assert event["ph"] in VALID_PHASES, event
        assert isinstance(event["name"], str) and event["name"], event
        assert isinstance(event["pid"], int), event
        assert isinstance(event["tid"], int), event
        if event["ph"] == "X":
            assert isinstance(event["ts"], (int, float)), event
            assert event["dur"] >= 0, event
        elif event["ph"] == "i":
            assert event["s"] == "t", event
    names = {e["name"] for e in events if e["ph"] == "M"}
    assert {"process_name", "thread_name"} <= names, names
    return events


def sim_events(events):
    return [e for e in events if e["pid"] == SIM_PID and e["ph"] != "M"]


def check_sim_timeline(events, processors):
    per_track = {}
    generate_cursor = 0
    detections = 0
    for event in sim_events(events):
        track = event["tid"]
        assert event["ts"] >= per_track.get(track, 0), (
            "sim timestamps regress on track", track, event)
        per_track[track] = event["ts"]
        if event["name"] == "generate.shard":
            assert event["ts"] == generate_cursor, (event["ts"], generate_cursor)
            assert event["tid"] == GENERATE_TRACK, event
            generate_cursor += event["dur"]
        elif event["name"] == "detection":
            assert event["ph"] == "i", event
            args = event["args"]
            assert args["defect"] and args["stage"], args
            assert args["rng_stream"] == args["sub_shard"], args
            detections += 1
    assert generate_cursor == processors, (generate_cursor, processors)
    return detections


def main() -> int:
    if len(sys.argv) < 2 or len(sys.argv) > 3:
        print(f"usage: {sys.argv[0]} <sdcctl-binary> [processors]", file=sys.stderr)
        return 2
    binary = sys.argv[1]
    processors = int(sys.argv[2]) if len(sys.argv) == 3 else DEFAULT_PROCESSORS

    doc = run_json(binary, ["screen", str(processors), "--trace-out", "-"])
    events = check_schema(doc)
    detections = check_sim_timeline(events, processors)
    assert detections > 0, "expected at least one detection instant"
    assert any(e["pid"] == HOST_PID for e in events), "host spans missing"

    streamed = run_json(
        binary, ["--stream", "screen", str(processors), "--trace-out", "-"])
    assert sim_events(streamed["traceEvents"]) == sim_events(events), \
        "streaming sim timeline diverges from materialized"

    metrics = run_json(binary, ["screen", str(processors), "--metrics-out", "-"])
    counters = metrics["counters"]
    assert counters["screening.detected"] == detections, \
        (counters["screening.detected"], detections)
    assert counters["screening.provenance.records"] == detections, \
        (counters["screening.provenance.records"], detections)

    print(f"ok: trace JSON validates; {detections} detection instants match "
          "screening.detected and screening.provenance.records")
    return 0


if __name__ == "__main__":
    sys.exit(main())
