#!/usr/bin/env python3
"""Acceptance check for sdcctl's --stream mode (docs/streaming.md).

Three properties, end to end through the CLI:

1. Equivalence: `sdcctl metrics` and `sdcctl --stream metrics` emit identical
   deterministic metric sections (counters / gauges / histograms) at 1 and 8 threads.
   Timers are wall-clock and excluded by design -- the two modes also time different
   phases ("fleet.generate.wall" vs "fleet.stream.wall").
2. Same for the human-readable `screen` table: byte-identical stdout.
3. Memory bound: a large streaming run completes under an address-space cap
   (`ulimit -v` semantics via RLIMIT_AS) sized far below what the materialized fleet
   of a 10x larger run occupies; its counters still report the full fleet. With
   --check-cap-binding, the script also proves the cap is real by running the
   materialized mode at 10x the size under the same cap and requiring it to die.

Usage: check_stream_json.py <sdcctl-binary> [big_processors] [cap_mb] [--check-cap-binding]
Defaults: 10,000,000 processors under a 96 MiB cap (the binary plus one lane of shard
scratch fits in ~70 MiB; the 100M-processor materialized fleet does not).
"""

import json
import resource
import subprocess
import sys

EQUIV_PROCESSORS = 50000
EQUIV_SEED = 123
DETERMINISTIC_SECTIONS = ("counters", "gauges", "histograms")


def run_metrics(binary, args, cap_mb=None):
    """Runs `sdcctl ... metrics ...` and returns (returncode, parsed snapshot or None)."""
    preexec = None
    if cap_mb is not None:
        def preexec():
            cap = cap_mb * 1024 * 1024
            resource.setrlimit(resource.RLIMIT_AS, (cap, cap))
    result = subprocess.run(
        [binary] + args,
        capture_output=True,
        text=True,
        preexec_fn=preexec,
    )
    if result.returncode != 0:
        return result.returncode, None
    return 0, json.loads(result.stdout)  # stdout must be exactly one JSON document


def deterministic_sections(snapshot):
    return {key: snapshot.get(key) for key in DETERMINISTIC_SECTIONS}


def main() -> int:
    argv = [a for a in sys.argv[1:] if a != "--check-cap-binding"]
    check_cap_binding = "--check-cap-binding" in sys.argv[1:]
    if not argv:
        print(f"usage: {sys.argv[0]} <sdcctl-binary> [big_processors] [cap_mb] "
              f"[--check-cap-binding]", file=sys.stderr)
        return 2
    binary = argv[0]
    big = int(argv[1]) if len(argv) > 1 else 10_000_000
    cap_mb = int(argv[2]) if len(argv) > 2 else 96

    # 1. Metric equivalence across modes and thread counts.
    base = ["metrics", str(EQUIV_PROCESSORS), "--seed", str(EQUIV_SEED)]
    rc, golden = run_metrics(binary, base + ["--threads", "1"])
    assert rc == 0, f"materialized metrics run failed ({rc})"
    golden_sections = deterministic_sections(golden)
    assert golden["counters"]["fleet.generate.processors"] == EQUIV_PROCESSORS
    assert golden["counters"]["screening.tested"] == EQUIV_PROCESSORS
    for threads in (1, 8):
        for mode_args, mode in (([], "materialized"), (["--stream"], "streaming")):
            rc, snapshot = run_metrics(binary, mode_args + base + ["--threads", str(threads)])
            assert rc == 0, f"{mode} metrics run failed at {threads} threads ({rc})"
            sections = deterministic_sections(snapshot)
            assert sections == golden_sections, (
                f"{mode} at {threads} threads diverged from materialized t1:\n"
                f"  got      {sections}\n  expected {golden_sections}")

    # 2. The screen table is byte-identical too.
    screen = ["screen", str(EQUIV_PROCESSORS), "--seed", str(EQUIV_SEED)]
    materialized_table = subprocess.run([binary] + screen, capture_output=True, check=True)
    streaming_table = subprocess.run([binary, "--stream"] + screen, capture_output=True,
                                     check=True)
    assert streaming_table.stdout == materialized_table.stdout, "screen table diverged"

    # 3. The big streaming run completes under the cap and covers the whole fleet.
    big_args = ["--stream", "--threads", "2", "metrics", str(big)]
    rc, snapshot = run_metrics(binary, big_args, cap_mb=cap_mb)
    assert rc == 0, (
        f"streaming run of {big} processors died under the {cap_mb} MiB cap ({rc})")
    assert snapshot["counters"]["fleet.generate.processors"] == big, snapshot["counters"]
    assert snapshot["counters"]["screening.tested"] == big, snapshot["counters"]

    cap_note = ""
    if check_cap_binding:
        # Prove the cap would actually stop a materialize-then-scan run at fleet scale:
        # 10x the processors means ~20 bytes-per-processor of columns-plus-arena that the
        # streaming mode never allocates.
        rc, _ = run_metrics(binary, ["--threads", "2", "metrics", str(big * 10)],
                            cap_mb=cap_mb)
        assert rc != 0, (
            f"materialized run of {big * 10} processors unexpectedly fit under "
            f"{cap_mb} MiB -- the cap demonstrates nothing")
        cap_note = f"; materialized x10 correctly died under the same cap"

    print(f"ok: streaming == materialized (counters/gauges/histograms, screen table) "
          f"at 1/8 threads; streaming {big} processors completed under "
          f"{cap_mb} MiB RLIMIT_AS{cap_note}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
